"""Quickstart: detect, combine, and optimize two FIR filters.

This reproduces the paper's motivating example (Chapter 1): two cascaded
FIR filters, written naturally as separate modular filters, are detected
as linear, collapsed into one matrix filter, and — for larger sizes —
moved to the frequency domain, all automatically.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.graph import Pipeline
from repro.ir import FilterBuilder
from repro.linear import analyze, maximal_linear_replacement
from repro.profiling import Profiler
from repro.runtime import run_stream
from repro.selection import select_optimizations


def make_fir(name, coeffs):
    """A textbook FIR filter: peek N, pop 1, push 1."""
    n = len(coeffs)
    f = FilterBuilder(name, peek=n, pop=1, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    return f.build()


def main():
    rng = np.random.default_rng(0)
    fir1 = make_fir("FIR1", rng.normal(size=64))
    fir2 = make_fir("FIR2", rng.normal(size=64))
    two_filters = Pipeline([fir1, fir2], name="TwoFilters")

    # 1. linear extraction + combination: the whole pipeline is one
    #    affine map y = xA + b
    lmap = analyze(two_filters)
    node = lmap.node_for(two_filters)
    print(f"combined linear node: {node}")
    print(f"  peek={node.peek} pop={node.pop} push={node.push}")

    # 2. run original vs maximal linear replacement: identical outputs,
    #    half the multiplications (64+64 taps -> 127-tap combined kernel)
    inputs = rng.normal(size=4000).tolist()
    p_orig, p_lin = Profiler(), Profiler()
    out_orig = run_stream(two_filters, inputs, 512, profiler=p_orig)
    collapsed = maximal_linear_replacement(two_filters)
    out_lin = run_stream(collapsed, inputs, 512, profiler=p_lin)
    assert np.allclose(out_orig, out_lin, atol=1e-8)
    print(f"original   : {p_orig.counts.mults / 512:8.1f} mults/output")
    print(f"combined   : {p_lin.counts.mults / 512:8.1f} mults/output")

    # 3. automatic selection picks the frequency domain for this size
    result = select_optimizations(two_filters)
    p_sel = Profiler()
    out_sel = run_stream(result.stream, inputs, 512, profiler=p_sel)
    assert np.allclose(out_orig, out_sel, atol=1e-7)
    print(f"autosel    : {p_sel.counts.mults / 512:8.1f} mults/output "
          f"(chose: {type(result.stream).__name__})")


if __name__ == "__main__":
    main()
