"""Legacy setup shim.

The benchmark environment has no ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-use-pep517 --no-build-isolation``
falls back to ``setup.py develop`` through this shim.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
