"""Tests for the textual mini-StreamIt front end."""

import math

import numpy as np
import pytest

from repro.dsl import compile_source, parse, tokenize
from repro.errors import DSLError
from repro.graph import FeedbackLoop, Filter, Pipeline, SplitJoin
from repro.linear import analyze, extract_filter
from repro.runtime import run_stream

FIR_SOURCE = """
float->float filter FIRFilter(int N) {
    float[N] weights;
    init {
        for (int i = 0; i < N; i++) {
            weights[i] = 1.0 / (i + 1);
        }
    }
    work push 1 pop 1 peek N {
        float sum = 0;
        for (int i = 0; i < N; i++) {
            sum += weights[i] * peek(i);
        }
        push(sum);
        pop();
    }
}
"""


class TestLexer:
    def test_tokens(self):
        toks = tokenize("float->float filter F { work push 1 { push(0.5); } }")
        kinds = [t.kind for t in toks]
        assert kinds[-1] == "eof"
        texts = [t.text for t in toks[:3]]
        assert texts == ["float", "->", "float"]

    def test_comments_skipped(self):
        toks = tokenize("// line\n/* block\nmore */ x")
        assert [t.text for t in toks if t.kind != "eof"] == ["x"]

    def test_numbers(self):
        toks = tokenize("3 3.5 1e3 2.5e-2")
        assert [t.kind for t in toks[:-1]] == ["int", "float", "float",
                                               "float"]

    def test_error_position(self):
        with pytest.raises(DSLError) as e:
            tokenize("x @ y")
        assert "line 1" in str(e.value)


class TestParserAndElaborator:
    def test_fir_filter_elaborates(self):
        filt = compile_source(FIR_SOURCE, "FIRFilter", 4)
        assert isinstance(filt, Filter)
        assert (filt.peek, filt.pop, filt.push) == (4, 1, 1)
        np.testing.assert_allclose(filt.fields["weights"],
                                   [1, 0.5, 1 / 3, 0.25])

    def test_fir_filter_is_linear(self):
        filt = compile_source(FIR_SOURCE, "FIRFilter", 3)
        result = extract_filter(filt)
        assert result.is_linear
        assert result.node.coefficient(0, 1) == pytest.approx(0.5)

    def test_fir_filter_runs(self):
        filt = compile_source(FIR_SOURCE, "FIRFilter", 2)
        out = run_stream(filt, [2.0, 4.0, 6.0], 2)
        np.testing.assert_allclose(out, [2 + 2, 4 + 3])

    def test_pipeline_with_loop(self):
        src = FIR_SOURCE + """
        float->float pipeline Chain(int K, int N) {
            for (int i = 0; i < K; i++) {
                add FIRFilter(N);
            }
        }
        """
        pipe = compile_source(src, "Chain", 3, 4)
        assert isinstance(pipe, Pipeline)
        assert len(pipe.children) == 3

    def test_splitjoin(self):
        src = FIR_SOURCE + """
        float->float splitjoin Bank {
            split duplicate;
            add FIRFilter(2);
            add FIRFilter(3);
            join roundrobin(1, 1);
        }
        """
        sj = compile_source(src, "Bank")
        assert isinstance(sj, SplitJoin)
        assert len(sj.children) == 2
        lmap = analyze(sj)
        assert lmap.is_linear(sj)

    def test_feedbackloop(self):
        src = """
        float->float filter AddDup {
            work peek 2 pop 2 push 2 {
                float t = pop() + pop();
                push(t);
                push(t);
            }
        }
        float->float filter Fwd {
            work pop 1 push 1 { push(pop()); }
        }
        float->float feedbackloop Integrator {
            join roundrobin(1, 1);
            body AddDup();
            loop Fwd();
            split roundrobin(1, 1);
            enqueue 0;
        }
        """
        loop = compile_source(src, "Integrator")
        assert isinstance(loop, FeedbackLoop)
        out = run_stream(loop, [1.0, 2.0, 3.0], 3)
        assert out == [1.0, 3.0, 6.0]

    def test_downsample_program(self):
        """The thesis' Figure 2-2 Downsample example, end to end."""
        src = """
        float->float filter Compressor(int M) {
            work peek M pop M push 1 {
                push(pop());
                for (int i = 0; i < M - 1; i++) pop();
            }
        }
        float->float filter Gain(float g) {
            work pop 1 push 1 { push(g * pop()); }
        }
        float->float pipeline Downsample {
            add Gain(2.0);
            add Compressor(2);
        }
        """
        pipe = compile_source(src)
        out = run_stream(pipe, [1.0, 2.0, 3.0, 4.0], 2)
        assert out == [2.0, 6.0]
        lmap = analyze(pipe)
        assert lmap.is_linear(pipe)
        node = lmap.node_for(pipe)
        assert (node.peek, node.pop, node.push) == (2, 2, 1)

    def test_prework_delay(self):
        src = """
        float->float filter Delay {
            prework push 1 { push(0.0); }
            work pop 1 push 1 { push(pop()); }
        }
        """
        filt = compile_source(src)
        out = run_stream(filt, [5.0, 6.0], 3)
        assert out == [0.0, 5.0, 6.0]

    def test_stateful_filter_detected(self):
        src = """
        float->float filter Acc {
            float state;
            work pop 1 push 1 {
                state = state + pop();
                push(state);
            }
        }
        """
        filt = compile_source(src)
        assert "state" in filt.mutable_fields
        assert not extract_filter(filt).is_linear

    def test_pi_and_intrinsics(self):
        src = """
        void->float filter CosSource {
            int n;
            work push 1 {
                push(cos(pi / 4 * n));
                n = n + 1;
            }
        }
        """
        filt = compile_source(src)
        from repro.graph import Pipeline as P
        from repro.runtime import Collector, run_graph

        out = run_graph(P([filt, Collector()]), 3)
        np.testing.assert_allclose(
            out, [1.0, math.cos(math.pi / 4), math.cos(math.pi / 2)],
            atol=1e-12)

    def test_if_else_in_work(self):
        src = """
        float->float filter Clip {
            work pop 1 push 1 {
                float t = pop();
                if (t > 1.0) { push(1.0); } else { push(t); }
            }
        }
        """
        filt = compile_source(src)
        out = run_stream(filt, [0.5, 3.0], 2)
        assert out == [0.5, 1.0]


class TestDSLErrors:
    def test_unknown_stream(self):
        with pytest.raises(DSLError):
            compile_source(FIR_SOURCE, "Nope")

    def test_arity_mismatch(self):
        with pytest.raises(DSLError):
            compile_source(FIR_SOURCE, "FIRFilter")

    def test_missing_work(self):
        with pytest.raises(DSLError):
            parse("float->float filter F { init { } }")

    def test_missing_join(self):
        src = FIR_SOURCE + """
        float->float splitjoin Bad {
            split duplicate;
            add FIRFilter(2);
        }
        """
        with pytest.raises(DSLError):
            compile_source(src, "Bad")

    def test_nonconstant_loop_rejected_structurally(self):
        with pytest.raises(DSLError):
            parse("""
            float->float filter F {
                work pop 1 push 1 { while (true) { push(pop()); } }
            }
            """)
