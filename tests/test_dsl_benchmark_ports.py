"""End-to-end DSL ports of benchmark programs.

Writes complete benchmark-style programs in the textual front end and
checks they elaborate, schedule, run, and optimize exactly like their
builder-API counterparts — the front end is a full peer, not a toy.
"""

import numpy as np
import pytest

from repro.dsl import compile_source
from repro.graph import construct_counts, steady_state
from repro.linear import analyze, maximal_linear_replacement
from repro.runtime import run_graph, run_stream
from repro.selection import select_optimizations

RATE_CONVERT_DSL = """
float->float filter Expander(int L) {
    work peek 1 pop 1 push L {
        push(pop());
        for (int i = 0; i < L - 1; i++) push(0.0);
    }
}

float->float filter Compressor(int M) {
    work peek M pop M push 1 {
        push(pop());
        for (int i = 0; i < M - 1; i++) pop();
    }
}

float->float filter LowPassFilter(float g, float cutoffFreq, int N) {
    float[N] h;
    init {
        int OFFSET = N / 2;
        for (int i = 0; i < N; i++) {
            int idx = i + 1;
            if (idx == OFFSET) {
                h[i] = g * cutoffFreq / pi;
            } else {
                h[i] = g * sin(cutoffFreq * (idx - OFFSET))
                         / (pi * (idx - OFFSET));
            }
        }
    }
    work peek N pop 1 push 1 {
        float sum = 0;
        for (int i = 0; i < N; i++) sum += h[i] * peek(i);
        push(sum);
        pop();
    }
}

float->float pipeline SamplingRateConverter(int N) {
    add Expander(2);
    add LowPassFilter(3.0, pi / 3, N);
    add Compressor(3);
}
"""

FILTER_BANK_DSL = """
float->float filter Gain(float g) {
    work pop 1 push 1 { push(g * pop()); }
}

float->float filter Window(int N, int band) {
    float[N] h;
    init {
        for (int i = 0; i < N; i++) {
            h[i] = cos(0.2 * band * i) / N;
        }
    }
    work peek N pop 1 push 1 {
        float sum = 0;
        for (int i = 0; i < N; i++) sum += h[i] * peek(i);
        push(sum);
        pop();
    }
}

float->float filter Summer(int M) {
    work peek M pop M push 1 {
        float s = 0;
        for (int i = 0; i < M; i++) s += peek(i);
        push(s);
        for (int i = 0; i < M; i++) pop();
    }
}

float->float splitjoin Bank(int N) {
    split duplicate;
    for (int b = 0; b < 3; b++) {
        add Window(N, b);
    }
    join roundrobin(1, 1, 1);
}

float->float pipeline FilterBankLite(int N) {
    add Gain(0.5);
    add Bank(N);
    add Summer(3);
}
"""


class TestRateConvertPort:
    @pytest.fixture(scope="class")
    def pipe(self):
        return compile_source(RATE_CONVERT_DSL, "SamplingRateConverter", 30)

    def test_elaborates_with_init_coefficients(self, pipe):
        lp = pipe.children[1]
        # the init block ran: coefficients are the windowed sinc
        h = lp.fields["h"]
        assert len(h) == 30
        assert abs(h[30 // 2 - 1] - 3.0 * (np.pi / 3) / np.pi) < 1e-12

    def test_rates_and_schedule(self, pipe):
        ss = steady_state(pipe)
        assert (ss.pop, ss.push) == (3, 2)  # 2/3 rate conversion

    def test_whole_pipeline_is_linear(self, pipe):
        lmap = analyze(pipe)
        node = lmap.node_for(pipe)
        assert node is not None
        assert (node.pop, node.push) == (3, 2)

    def test_optimized_equivalence(self, pipe):
        rng = np.random.default_rng(11)
        inputs = rng.normal(size=2000).tolist()
        baseline = run_stream(pipe, inputs, 128)
        for optimized in (maximal_linear_replacement(pipe),
                          select_optimizations(pipe).stream):
            got = run_stream(optimized, inputs, 128)
            np.testing.assert_allclose(got, baseline, atol=1e-8)


class TestFilterBankPort:
    @pytest.fixture(scope="class")
    def pipe(self):
        return compile_source(FILTER_BANK_DSL, "FilterBankLite", 16)

    def test_structural_loop_unrolled(self, pipe):
        counts = construct_counts(pipe)
        assert counts["filters"] == 5  # gain + 3 windows + summer
        assert counts["splitjoins"] == 1

    def test_collapses_to_single_node(self, pipe):
        lmap = analyze(pipe)
        node = lmap.node_for(pipe)
        assert node is not None and node.push == 1

    def test_runs_and_optimizes(self, pipe):
        rng = np.random.default_rng(12)
        inputs = rng.normal(size=1000).tolist()
        baseline = run_stream(pipe, inputs, 64)
        optimized = select_optimizations(pipe).stream
        got = run_stream(optimized, inputs, 64)
        np.testing.assert_allclose(got, baseline, atol=1e-8)

    def test_mults_drop_after_combination(self, pipe):
        from repro.profiling import Profiler

        rng = np.random.default_rng(13)
        inputs = rng.normal(size=1000).tolist()
        p0, p1 = Profiler(), Profiler()
        run_stream(pipe, inputs, 64, profiler=p0)
        run_stream(maximal_linear_replacement(pipe), inputs, 64,
                   profiler=p1)
        assert p1.counts.mults < p0.counts.mults


def test_downsample_fig_2_2_end_to_end():
    """The thesis' Figure 2-2 Downsample program through the DSL."""
    src = RATE_CONVERT_DSL + """
    void->float filter FloatSource {
        float x;
        work push 1 { push(x); x = x + 1.0; }
    }
    void->float pipeline Downsample(int N) {
        add FloatSource();
        add LowPassFilter(2.0, pi / 2, N);
        add Compressor(2);
    }
    """
    prog = compile_source(src, "Downsample", 16)
    from repro.graph import Pipeline
    from repro.runtime import Collector

    full = Pipeline([prog, Collector()])
    out = run_graph(full, 16)
    assert len(out) == 16 and np.all(np.isfinite(out))
