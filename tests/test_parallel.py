"""The parallel execution engine: shared-memory rings, region
scheduling, data-parallel fission, session integration, bench CLI.

The engine's contract (README "Parallel execution"):

* ``workers=k`` outputs match ``workers=1`` — bitwise on round-robin
  clone fission and pure region parallelism, within 1e-9 on the
  state-monoid lift path (summation regrouping);
* FLOP accounting is exact: replicas report the fused filter's
  per-firing counts, so totals match whenever both executions perform
  the same logical firings (output counts that are a multiple of the
  fissioned round ``k*push``);
* the parent owns all shared segments (workers never grow them) and
  ``close()`` unlinks every one.
"""

import pickle

import numpy as np
import pytest

import repro
from repro.bench import main as bench_main
from repro.errors import InterpError
from repro.exec.planner import compiled_plan_for
from repro.graph.streams import (Duplicate, FeedbackLoop, Pipeline,
                                 RoundRobin, SplitJoin)
from repro.linear.filters import LinearFilter
from repro.linear.node import LinearNode
from repro.linear.state import StatefulLinearFilter, StatefulLinearNode
from repro.parallel import fission as fission_mod
from repro.parallel import pool as pool_mod
from repro.parallel import shm as shm_mod
from repro.parallel.executor import ParallelPlanExecutor
from repro.parallel.fission import fission_stream
from repro.parallel.regions import build_units
from repro.parallel.shm import ShmRing, attach_ring, forget_rings
from repro.profiling import Profiler
from repro.runtime import FunctionSource


def _src():
    return FunctionSource(lambda n: float(np.sin(0.3 * n)), "src")


def _run_pair(build, n_out, workers, optimize="none"):
    """(serial outputs, serial flops, parallel outputs, parallel flops)."""
    p1, p2 = Profiler(), Profiler()
    ex1, _ = compiled_plan_for(build(), p1, optimize=optimize, cache=False)
    out1 = np.asarray(ex1.run(n_out))
    ex2, _ = compiled_plan_for(build(), p2, optimize=optimize, cache=False,
                               workers=workers)
    assert isinstance(ex2, ParallelPlanExecutor)
    try:
        out2 = np.asarray(ex2.run(n_out))
    finally:
        ex2.close()
    return out1, p1.counts.flops, out2, p2.counts.flops


# ---------------------------------------------------------------------------
# Shared-memory rings
# ---------------------------------------------------------------------------


class TestShmRing:
    def test_attach_shares_storage_and_cursors(self):
        ring = ShmRing("ch", prefill=np.arange(8.0))
        try:
            info = ring.describe()
            other = attach_ring(*info)
            assert not other.owner
            assert list(other.pop_block_array(3)) == [0.0, 1.0, 2.0]
            # the attached side's writes land in the owner's storage
            other.push_array(np.array([99.0]))
            ring._head, ring._tail = other._head, other._tail
            assert ring.snapshot()[-1] == 99.0
            forget_rings([ring.uid])
        finally:
            ring.close(unlink=True)

    def test_owner_grow_renames_segment_and_keeps_live_data(self):
        ring = ShmRing("ch", prefill=np.arange(10.0))
        try:
            seg0 = ring.shm.name
            cap0 = len(ring._buf)
            ring.ensure_capacity(cap0 * 4)
            assert ring.shm.name != seg0
            assert len(ring._buf) >= cap0 * 4
            assert list(ring.snapshot()) == [float(i) for i in range(10)]
        finally:
            ring.close(unlink=True)

    def test_non_owner_may_slide_but_never_grow(self):
        ring = ShmRing("ch", capacity=64)
        try:
            worker_side = attach_ring(*ring.describe())
            cap = len(worker_side._buf)
            worker_side.push_array(np.zeros(cap - 8))
            worker_side.pop_block_array(16)
            worker_side.push_array(np.zeros(12))  # fits after a slide
            with pytest.raises(InterpError, match="pre-grow"):
                worker_side.push_array(np.zeros(2 * cap))
            forget_rings([ring.uid])
        finally:
            ring.close(unlink=True)

    def test_close_unlinks_the_segment(self):
        from multiprocessing import shared_memory

        ring = ShmRing("ch", prefill=np.arange(4.0))
        segname = ring.shm.name
        ring.close(unlink=True)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segname)

    def test_pickle_resolves_to_the_attach_registry(self):
        ring = ShmRing("ch", prefill=np.arange(4.0))
        try:
            clone = pickle.loads(pickle.dumps(ring))
            again = pickle.loads(pickle.dumps(ring))
            # same uid -> same Python object, so cached kernel steps in a
            # worker keep valid references across tasks
            assert clone is again
            assert clone is shm_mod._ATTACHED[ring.uid]
            assert list(clone.snapshot()) == [0.0, 1.0, 2.0, 3.0]
            forget_rings([ring.uid])
        finally:
            ring.close(unlink=True)


# ---------------------------------------------------------------------------
# Region construction
# ---------------------------------------------------------------------------


class TestRegions:
    def test_units_partition_steps_and_form_a_dag(self):
        from repro.apps import filterbank

        ex, _ = compiled_plan_for(filterbank.build(m=3, taps=12),
                                  optimize="auto", cache=False, workers=2)
        try:
            units = build_units(ex)
            seen = sorted(i for u in units for i in u.step_indices)
            assert seen == list(range(len(ex.steps)))
            # Kahn over the unit edges must consume every unit (acyclic)
            indeg = {u.id: len(u.preds) for u in units}
            ready = [u for u in units if not u.preds]
            done = 0
            while ready:
                u = ready.pop()
                done += 1
                for s in u.succs:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        ready.append(next(x for x in units if x.id == s))
            assert done == len(units)
            assert any(u.offload for u in units)
        finally:
            ex.close()


# ---------------------------------------------------------------------------
# Fission rewrites
# ---------------------------------------------------------------------------


def _clone_node(rng, e=96, u=24):
    return LinearNode(A=rng.standard_normal((e, u)),
                      b=rng.standard_normal(u), peek=e, pop=e, push=u)


class TestFissionRewrite:
    def test_clone_path_roundrobin_split(self):
        rng = np.random.default_rng(0)
        node = _clone_node(rng)
        out = fission_stream(
            Pipeline([_src(), LinearFilter(node, name="blk")]), 3)
        sj = out.children[1]
        assert isinstance(sj, SplitJoin)
        assert isinstance(sj.splitter, RoundRobin)
        assert len(sj.children) == 3
        for rep in sj.children:
            assert rep.linear_node.peek == node.peek
            assert rep.account_counts is not None

    def test_lift_path_duplicate_split_and_expanded_rates(self):
        rng = np.random.default_rng(1)
        node = LinearNode(A=rng.standard_normal((40, 2)),
                          b=rng.standard_normal(2), peek=40, pop=2, push=2)
        out = fission_stream(
            Pipeline([_src(), LinearFilter(node, name="blk")]), 4)
        sj = out.children[1]
        assert isinstance(sj.splitter, Duplicate)
        for rep in sj.children:
            n = rep.linear_node
            assert n.peek == node.peek + 3 * node.pop
            assert n.pop == 4 * node.pop
            assert n.push == node.push

    def test_feedback_loops_are_never_fissioned(self):
        rng = np.random.default_rng(2)
        loop = FeedbackLoop(
            body=LinearFilter(_clone_node(rng, 2, 2), name="b"),
            loop=LinearFilter(_clone_node(rng, 1, 1), name="l"),
            joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
            enqueued=[0.0])
        assert fission_stream(loop, 4) is loop

    def test_unprofitable_leaves_are_left_alone(self):
        tiny = LinearNode(A=np.eye(2), b=np.zeros(2), peek=2, pop=2,
                          push=2)
        s = Pipeline([_src(), LinearFilter(tiny, name="tiny")])
        assert fission_stream(s, 4) is s

    def test_workers_one_is_identity(self):
        s = Pipeline([_src()])
        assert fission_stream(s, 1) is s


# ---------------------------------------------------------------------------
# Fission differential suite (the parity/FLOP contract)
# ---------------------------------------------------------------------------


@pytest.fixture
def force_fission(monkeypatch):
    """Price every candidate as profitable so small randomized nodes
    exercise the constructions."""
    monkeypatch.setattr(fission_mod, "FISSION_THRESHOLD", 0.0)


@pytest.mark.parametrize("k", [2, 3, 4])
class TestFissionDifferential:
    def test_stateless_clone_is_bitwise(self, k, force_fission):
        rng = np.random.default_rng(100 + k)
        for _ in range(2):
            e = int(rng.integers(3, 10))
            u = int(rng.integers(1, 6))
            node = LinearNode(A=rng.standard_normal((e, u)),
                              b=rng.standard_normal(u),
                              peek=e, pop=e, push=u)

            def build():
                return Pipeline([_src(), LinearFilter(node, name="blk")])

            n_out = k * u * 40
            o1, f1, o2, f2 = _run_pair(build, n_out, k)
            assert np.array_equal(o1, o2)
            assert f1 == f2

    def test_stateless_lookahead_lift_within_1e9_exact_flops(
            self, k, force_fission):
        rng = np.random.default_rng(200 + k)
        for _ in range(2):
            o = int(rng.integers(1, 4))
            e = o + int(rng.integers(1, 9))
            u = int(rng.integers(1, 6))
            node = LinearNode(A=rng.standard_normal((e, u)),
                              b=rng.standard_normal(u),
                              peek=e, pop=o, push=u)

            def build():
                return Pipeline([_src(), LinearFilter(node, name="blk")])

            n_out = k * u * 40
            o1, f1, o2, f2 = _run_pair(build, n_out, k)
            assert len(o1) == len(o2) == n_out
            assert np.allclose(o1, o2, rtol=1e-9, atol=1e-9)
            assert f1 == f2

    def test_stateful_linear_lift_within_1e9_exact_flops(
            self, k, force_fission):
        rng = np.random.default_rng(300 + k)
        for _ in range(2):
            o = int(rng.integers(1, 3))
            e = o + int(rng.integers(0, 4))
            u = int(rng.integers(1, 4))
            ks = int(rng.integers(1, 4))
            Cs = rng.standard_normal((ks, ks))
            Cs *= 0.5 / max(1e-9, float(np.max(np.abs(
                np.linalg.eigvals(Cs)))))
            node = StatefulLinearNode(
                Ax=rng.standard_normal((e, u)),
                As=rng.standard_normal((ks, u)),
                bx=rng.standard_normal(u),
                Cx=rng.standard_normal((e, ks)),
                Cs=Cs, bs=rng.standard_normal(ks),
                s0=rng.standard_normal(ks),
                peek=e, pop=o, push=u)

            def build():
                return Pipeline([_src(),
                                 StatefulLinearFilter(node, name="st")])

            n_out = k * u * 40
            o1, f1, o2, f2 = _run_pair(build, n_out, k)
            assert len(o1) == len(o2) == n_out
            assert np.allclose(o1, o2, rtol=1e-9, atol=1e-9)
            assert f1 == f2


# ---------------------------------------------------------------------------
# Executor behavior
# ---------------------------------------------------------------------------


class TestParallelExecutor:
    def test_region_parallel_apps_are_bitwise_with_exact_flops(self):
        from repro.apps import filterbank

        def build():
            return filterbank.build(m=3, taps=12)

        o1, f1, o2, f2 = _run_pair(build, 1200, 2, optimize="none")
        assert np.array_equal(o1, o2)
        assert f1 == f2

    def test_resumable_advance_matches_one_shot(self):
        # advance() is the resumable API; run() keeps the legacy
        # absolute-target prefix semantics on Collector-sink plans.
        from repro.apps import fir

        ex1, _ = compiled_plan_for(fir.build(taps=32), optimize="auto",
                                   cache=False)
        whole = np.asarray(ex1.advance(1500))
        ex2, _ = compiled_plan_for(fir.build(taps=32), optimize="auto",
                                   cache=False, workers=2)
        try:
            parts = np.concatenate([np.asarray(ex2.advance(400)),
                                    np.asarray(ex2.advance(700)),
                                    np.asarray(ex2.advance(400))])
            assert np.array_equal(whole, parts)
        finally:
            ex2.close()

    def test_close_unlinks_all_segments_and_is_idempotent(self):
        from multiprocessing import shared_memory

        from repro.apps import fir

        ex, _ = compiled_plan_for(fir.build(taps=32), optimize="none",
                                  cache=False, workers=2)
        ex.run(200)
        segs = [r.shm.name for r in ex.rings]
        ex.close()
        ex.close()
        for seg in segs:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg)

    def test_survives_a_pool_reset_between_runs(self):
        from repro.apps import fir

        ex1, _ = compiled_plan_for(fir.build(taps=32), optimize="none",
                                   cache=False)
        whole = np.asarray(ex1.advance(800))
        ex2, _ = compiled_plan_for(fir.build(taps=32), optimize="none",
                                   cache=False, workers=2)
        try:
            first = np.asarray(ex2.advance(400))
            # kill every worker: the next flush must re-ship warm steps
            pool_mod.get_pool(2).reset()
            second = np.asarray(ex2.advance(400))
            assert np.array_equal(whole, np.concatenate([first, second]))
        finally:
            ex2.close()

    def test_parallel_stats_counts_tasks(self):
        from repro.apps import filterbank

        ex, _ = compiled_plan_for(filterbank.build(m=3, taps=12),
                                  optimize="none", cache=False, workers=2)
        try:
            ex.run(600)
            stats = ex.parallel_stats()
            assert stats["workers"] == 2
            assert stats["tasks"] >= 1
            assert stats["pool"]["workers"] >= 2
            assert any(v["tasks"] for v in stats["regions"].values())
        finally:
            ex.close()


class TestPoolLifecycle:
    def test_pool_is_shared_and_grows(self):
        p2 = pool_mod.get_pool(2)
        p3 = pool_mod.get_pool(3)
        assert p2 is p3
        assert len(p3.workers) >= 3

    def test_reset_and_shutdown_bump_generation(self):
        pool = pool_mod.get_pool(2)
        g0 = pool.generation
        pool.reset()
        assert pool.generation == g0 + 1
        pool_mod.shutdown_pool()
        pool_mod.shutdown_pool()  # idempotent
        assert pool_mod.pool_stats() is None
        # the next request restarts cleanly
        assert len(pool_mod.get_pool(2).workers) == 2


# ---------------------------------------------------------------------------
# Session + CLI integration
# ---------------------------------------------------------------------------


class TestSessionWorkers:
    def test_push_session_prefix_parity(self):
        prog = ("float->float filter Sq { work peek 2 pop 1 push 1 "
                "{ push(peek(0) * 0.5 + peek(1) * 0.25); pop(); } }")
        s1 = repro.compile(prog)
        s2 = repro.compile(prog, workers=2)
        x = np.cos(np.arange(2000.0) * 0.1)
        a = np.concatenate([s1.push(x[:900]), s1.push(x[900:])])
        b = np.concatenate([s2.push(x[:900]), s2.push(x[900:])])
        n = min(len(a), len(b))
        assert n > 0
        assert np.array_equal(a[:n], b[:n])
        s2.close()
        s1.close()

    def test_reset_replays_identically(self):
        from repro.apps import fir

        s = repro.compile(fir.build(taps=32), optimize="auto", workers=2)
        first = s.run(900)
        s.reset()
        again = s.run(900)
        assert np.array_equal(first, again)
        s.close()

    def test_scalar_backends_reject_workers(self):
        from repro.apps import fir

        for backend in ("interp", "compiled"):
            with pytest.raises(ValueError, match="requires backend"):
                repro.compile(fir.build(taps=32), backend=backend,
                              workers=2)

    def test_close_is_idempotent_and_releases_shared_memory(self):
        from multiprocessing import shared_memory

        from repro.apps import fir

        s = repro.compile(fir.build(taps=32), workers=2)
        s.run(300)
        segs = [r.shm.name for r in s._executor.rings]
        s.close()
        s.close()
        for seg in segs:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg)


class TestBenchWorkersCLI:
    def test_workers_conflicts_with_scalar_backends(self, capsys):
        for backend in ("interp", "compiled"):
            with pytest.raises(SystemExit) as exc:
                bench_main(["--app", "fir", "--workers", "2",
                            "--backend", backend])
            assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "parallel plan engine" in err

    def test_workers_conflicts_with_serve_and_chunked(self):
        for extra in (["--serve"], ["--chunked"], ["--plan-report"]):
            with pytest.raises(SystemExit) as exc:
                bench_main(["--app", "fir", "--workers", "2"] + extra)
            assert exc.value.code == 2

    def test_workers_run_emits_scaling_table(self, tmp_path, capsys):
        out = tmp_path / "parallel.txt"
        rc = bench_main(["--app", "fir", "--workers", "2",
                         "--outputs", "512",
                         "--parallel-out", str(out)])
        assert rc == 0
        import json

        rec = json.loads(capsys.readouterr().out.strip())
        assert rec["workers"] == 2
        assert [row["workers"] for row in rec["scaling"]] == [1, 2]
        assert len({row["flops"] for row in rec["scaling"]}) == 1
        text = out.read_text()
        assert "parallel scaling" in text
        assert "workers" in text

    def test_compare_gains_workers_column(self, capsys):
        import json

        rc = bench_main(["--app", "fir", "--workers", "2",
                         "--outputs", "96", "--compare"])
        assert rc == 0
        rec = json.loads(capsys.readouterr().out.strip())
        assert all("workers" in cell for cell in rec["cells"])
        assert any(cell["workers"] == 2 for cell in rec["cells"])
        assert rec["flops_equal_workers"] is True
