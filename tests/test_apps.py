"""Integration tests: every benchmark builds, schedules, runs, and
optimizes equivalently under all three configurations (§5.2)."""

import numpy as np
import pytest

from repro.apps import BENCHMARKS, fir, fmradio, radar, vocoder
from repro.frequency import maximal_frequency_replacement
from repro.graph import construct_counts, leaf_filters, steady_state
from repro.linear import analyze, maximal_linear_replacement
from repro.runtime import run_graph
from repro.selection import select_optimizations

# smaller-than-paper parameters keep the equivalence tests quick; the
# benchmark harness uses the paper's sizes.
SMALL_PARAMS = {
    "FIR": dict(taps=32),
    "RateConvert": dict(taps=48),
    "TargetDetect": dict(n=24),
    "FMRadio": dict(bands=4, taps=16),
    "Radar": dict(channels=4, beams=2, fir1_taps=4, fir2_taps=2, mf_taps=4),
    "FilterBank": dict(m=3, taps=12),
    "Vocoder": dict(window=16, decimation=8, n_filters=3, taps=12),
    "Oversampler": dict(stages=3, taps=16),
    "DToA": dict(stages=2, taps=12, out_taps=24),
    "Echo": dict(delay=24, gain=0.5, taps=16),
    "VocoderEcho": dict(window=16, decimation=8, n_filters=3, taps=12,
                        echo_delay=16),
    "IIR": dict(),
}

N_OUT = {name: 32 for name in SMALL_PARAMS}
N_OUT["Radar"] = 16


def small(name):
    return BENCHMARKS[name](**SMALL_PARAMS[name])


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_builds_and_schedules(name):
    program = small(name)
    ss = steady_state(program)
    # void->void top level: consumes and produces nothing externally
    assert ss.push == 0 and ss.pop == 0
    assert all(m >= 1 for m in ss.mult.values())
    counts = construct_counts(program)
    assert counts["filters"] >= 3


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_runs_and_produces_finite_output(name):
    out = run_graph(small(name), N_OUT[name])
    assert len(out) == N_OUT[name]
    assert np.all(np.isfinite(out))


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_linear_replacement_equivalence(name):
    program = small(name)
    baseline = run_graph(program, N_OUT[name])
    optimized = maximal_linear_replacement(small(name))
    got = run_graph(optimized, N_OUT[name])
    np.testing.assert_allclose(got, baseline, atol=1e-8)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_frequency_replacement_equivalence(name):
    program = small(name)
    baseline = run_graph(program, N_OUT[name])
    optimized = maximal_frequency_replacement(small(name))
    got = run_graph(optimized, N_OUT[name])
    np.testing.assert_allclose(got, baseline, atol=1e-7)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_autosel_equivalence(name):
    program = small(name)
    baseline = run_graph(program, N_OUT[name])
    optimized = select_optimizations(small(name)).stream
    got = run_graph(optimized, N_OUT[name])
    np.testing.assert_allclose(got, baseline, atol=1e-7)


def test_linearity_profile_matches_paper_structure():
    """Spot-check which filters the analysis labels linear (Table 5.2)."""
    program = small("FMRadio")
    lmap = analyze(program)
    by_name = {f.name: lmap.is_linear(f) for f in leaf_filters(program)}
    assert by_name["FMDemodulator"] is False
    assert by_name["FloatOneSource"] is False
    assert by_name["FrontLowPass"] is True
    assert by_name["FloatDiff"] is True

    vc = small("Vocoder")
    lmap = analyze(vc)
    by_name = {f.name: lmap.is_linear(f) for f in leaf_filters(vc)}
    assert by_name["CorrPeak"] is False
    assert by_name["CenterClip"] is False
    assert by_name["LowPassFilter"] is True

    rd = small("Radar")
    lmap = analyze(rd)
    linear_names = [f.name for f in leaf_filters(rd) if lmap.is_linear(f)]
    assert any(n.startswith("Beamform") for n in linear_names)
    assert any(n.startswith("BeamFir") for n in linear_names)
    assert not any(n.startswith("InputGenerate") for n in linear_names)
    assert not any(n == "Magnitude" for n in linear_names)


def test_fir_default_is_256_taps():
    program = fir.build()
    lp = [f for f in leaf_filters(program)
          if f.name == "LowPassFilter"][0]
    assert lp.peek == 256


def test_radar_beamform_rates_match_paper():
    """'Beamform pushes 2 items, but pops and peeks 24' (§5.2)."""
    program = radar.build()
    bf = [f for f in leaf_filters(program) if f.name == "Beamform0"][0]
    assert (bf.peek, bf.pop, bf.push) == (24, 24, 2)


def test_fmradio_equalizer_fully_linear():
    """The equalizer subgraph collapses to a single linear node."""
    eq = fmradio.equalizer(fmradio.SAMPLING_RATE, bands=4, taps=8)
    lmap = analyze(eq)
    assert lmap.is_linear(eq)
    node = lmap.node_for(eq)
    assert node.push == 1  # bands differenced and summed to one output
