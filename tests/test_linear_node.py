"""Unit tests for the LinearNode representation (thesis §3.1)."""

import numpy as np
import pytest

from repro.linear import LinearNode


def test_figure_3_1_example():
    """The thesis' Figure 3-1: peek 3, pop 1, push 2 filter.

    work { push(3*peek(2) + 5*peek(1)); push(2*peek(2) + peek(0) + 6); }
    """
    node = LinearNode.from_coefficients(
        coeffs_per_push=[[0.0, 5.0, 3.0],   # push 0: 5*peek(1) + 3*peek(2)
                         [1.0, 0.0, 2.0]],  # push 1: peek(0) + 2*peek(2) + 6
        offsets=[0.0, 6.0],
        pop=1,
    )
    assert (node.peek, node.pop, node.push) == (3, 1, 2)
    # thesis layout: A = [[3, 2], [0, 5]? ...] -- verify via accessors
    assert node.coefficient(0, 2) == 3.0
    assert node.coefficient(0, 1) == 5.0
    assert node.coefficient(0, 0) == 0.0
    assert node.coefficient(1, 2) == 2.0
    assert node.coefficient(1, 1) == 0.0
    assert node.coefficient(1, 0) == 1.0
    assert node.offset(0) == 0.0
    assert node.offset(1) == 6.0
    # thesis layout: row 0 holds peek(2) coefficients, column 0 the second
    # push; Figure 3-1 prints rows [.., ..], [0, 5], [1, 0]:
    expected_A = np.array([[2.0, 3.0],
                           [0.0, 5.0],
                           [1.0, 0.0]])
    np.testing.assert_array_equal(node.A, expected_A)
    np.testing.assert_array_equal(node.b, [6.0, 0.0])


def test_apply_matches_work_semantics():
    node = LinearNode.from_coefficients(
        [[0.0, 5.0, 3.0], [1.0, 0.0, 2.0]], [0.0, 6.0], pop=1)
    window = np.array([10.0, 20.0, 30.0])  # peek(0), peek(1), peek(2)
    y = node.apply(window)
    assert y[0] == pytest.approx(3 * 30 + 5 * 20)
    assert y[1] == pytest.approx(2 * 30 + 10 + 6)


def test_reference_run_slides_window():
    # y_i = x_i + 2*x_{i+1}, pop 1
    node = LinearNode.from_coefficients([[1.0, 2.0]], [0.0], pop=1)
    out = node.reference_run([1, 2, 3, 4], firings=3)
    np.testing.assert_allclose(out, [1 + 4, 2 + 6, 3 + 8])


def test_reference_run_with_pop_2():
    node = LinearNode.from_coefficients([[1.0, 1.0]], [0.0], pop=2)
    out = node.reference_run([1, 2, 3, 4, 5, 6], firings=3)
    np.testing.assert_allclose(out, [3, 7, 11])


def test_shape_validation():
    with pytest.raises(ValueError):
        LinearNode(np.zeros((2, 2)), np.zeros(3), 2, 1, 2)
    with pytest.raises(ValueError):
        LinearNode(np.zeros((3, 2)), np.zeros(2), 2, 1, 2)
    with pytest.raises(ValueError):
        LinearNode(np.zeros((2, 1)), np.zeros(1), 2, 0, 1)  # pop 0
    with pytest.raises(ValueError):
        LinearNode(np.zeros((1, 1)), np.zeros(1), 1, 2, 1)  # peek < pop


def test_nnz_and_spans():
    A = np.array([[0.0, 1.0],
                  [2.0, 0.0],
                  [3.0, 0.0],
                  [0.0, 0.0]])
    node = LinearNode(A, np.array([0.0, 4.0]), 4, 1, 2)
    assert node.nnz == 3
    assert node.nnz_b == 1
    assert node.column_spans() == [(1, 3), (0, 1)]


def test_all_zero_column_span():
    node = LinearNode(np.zeros((3, 1)), np.zeros(1), 3, 1, 1)
    assert node.column_spans() == [(0, 0)]
    np.testing.assert_allclose(node.apply(np.ones(3)), [0.0])
