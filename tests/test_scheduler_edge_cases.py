"""Steady-state scheduler edge cases."""

import pytest

from repro.errors import SchedulingError
from repro.graph import (Duplicate, Pipeline, RoundRobin, SplitJoin,
                         steady_state)
from repro.ir import FilterBuilder
from repro.runtime import Identity


def rate_filter(name, pop, push, peek=None):
    peek = max(pop, peek or pop)
    f = FilterBuilder(name, peek=peek, pop=pop, push=push)
    with f.work():
        acc = f.local("acc", 0.0)
        with f.loop("i", 0, pop) as i:
            f.assign(acc, acc + f.peek(i))
        with f.loop("j", 0, push):
            f.push(acc)
        with f.loop("k", 0, pop):
            f.pop()
    return f.build()


def test_three_stage_lcm_chain():
    """Rates 1->2, 3->1, 2->5: multiplicities from the lcm chain."""
    pipe = Pipeline([rate_filter("a", 1, 2), rate_filter("b", 3, 1),
                     rate_filter("c", 2, 5)])
    ss = steady_state(pipe)
    m = [ss.multiplicity(c) for c in pipe.children]
    # a:2 -> b:(2*2/3)... smallest integers: a=3,b=2,c=1
    assert m == [3, 2, 1]
    assert ss.pop == 3 and ss.push == 5


def test_nested_pipeline_multiplicities():
    inner = Pipeline([rate_filter("x", 1, 2)], name="inner")
    outer = Pipeline([inner, rate_filter("y", 4, 1)], name="outer")
    ss = steady_state(outer)
    assert ss.multiplicity(inner.children[0]) == 2
    assert ss.multiplicity(outer.children[1]) == 1


def test_splitjoin_of_pipelines():
    sj = SplitJoin(
        Duplicate(),
        [Pipeline([rate_filter("l1", 1, 2), rate_filter("l2", 1, 1)]),
         rate_filter("r", 1, 2)],
        RoundRobin((2, 2)))
    ss = steady_state(sj)
    assert ss.pop == 1 and ss.push == 4


def test_roundrobin_weights_determine_rates():
    sj = SplitJoin(RoundRobin((3, 1)),
                   [Identity("a"), Identity("b")],
                   RoundRobin((3, 1)))
    ss = steady_state(sj)
    assert ss.pop == 4 and ss.push == 4


def test_unbalanced_roundrobin_rejected():
    # splitter gives 1:1 but children output 1:2 against a 1:1 joiner
    sj = SplitJoin(RoundRobin((1, 1)),
                   [Identity("a"), rate_filter("up", 1, 2)],
                   RoundRobin((1, 1)))
    with pytest.raises(SchedulingError):
        steady_state(sj)


def test_weighted_joiner_balances_unequal_producers():
    # child a produces 1/firing, child b produces 2/firing; joiner 1:2
    sj = SplitJoin(RoundRobin((1, 1)),
                   [Identity("a"), rate_filter("up", 1, 2)],
                   RoundRobin((1, 2)))
    ss = steady_state(sj)
    assert ss.pop == 2 and ss.push == 3


def test_multiplicities_are_minimal_integers():
    pipe = Pipeline([rate_filter("a", 1, 4), rate_filter("b", 6, 1)])
    ss = steady_state(pipe)
    assert [ss.multiplicity(c) for c in pipe.children] == [3, 2]
