"""Linear expansion tests (thesis §3.3.1, validated on Figure 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linear import LinearNode, expand, expand_firings


def fir2():
    """The first filter of Figure 3-4: y = 2*peek(0) + peek(1), A1 = [1;2]
    in the thesis' layout (row 0 holds the peek(1) coefficient)."""
    return LinearNode.from_coefficients([[2.0, 1.0]], [0.0], pop=1)


def test_figure_3_4_expansion():
    """expand(A1, 4, 1, 3) from the worked pipeline example."""
    node = expand(fir2(), 4, 1, 3)
    expected = np.array([
        [1.0, 0.0, 0.0],
        [2.0, 1.0, 0.0],
        [0.0, 2.0, 1.0],
        [0.0, 0.0, 2.0],
    ])
    np.testing.assert_array_equal(node.A, expected)
    np.testing.assert_array_equal(node.b, np.zeros(3))
    assert (node.peek, node.pop, node.push) == (4, 1, 3)


def test_expand_identity():
    node = fir2()
    same = expand(node, node.peek, node.pop, node.push)
    np.testing.assert_array_equal(same.A, node.A)
    np.testing.assert_array_equal(same.b, node.b)


def test_expand_firings_equivalence():
    """k-firing expansion computes exactly k consecutive firings."""
    node = LinearNode.from_coefficients(
        [[1.0, -2.0, 0.5], [0.0, 3.0, 1.0]], [1.0, -1.0], pop=2)
    k = 3
    expanded = expand_firings(node, k)
    assert expanded.pop == k * node.pop
    assert expanded.push == k * node.push
    rng = np.random.default_rng(42)
    inputs = rng.normal(size=expanded.peek)
    expected = node.reference_run(inputs, firings=k)
    got = expanded.apply(inputs[:expanded.peek])
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_expand_b_replication():
    node = LinearNode.from_coefficients([[1.0], [2.0]], [5.0, 7.0], pop=1)
    expanded = expand_firings(node, 2)
    # push order per firing is (b=5, b=7, 5, 7)
    outs = expanded.apply(np.zeros(expanded.peek))
    np.testing.assert_allclose(outs, [5.0, 7.0, 5.0, 7.0])


def test_expand_pads_zero_rows_on_top():
    """e' larger than the copies need => zero rows at the top (extra peek)."""
    node = fir2()
    expanded = expand(node, 6, 1, 3)
    assert expanded.A.shape == (6, 3)
    np.testing.assert_array_equal(expanded.A[:2], np.zeros((2, 3)))


@settings(max_examples=50, deadline=None)
@given(
    e=st.integers(1, 6), o=st.integers(1, 4), u=st.integers(1, 4),
    k=st.integers(1, 4), seed=st.integers(0, 10_000),
)
def test_property_expansion_equals_repeated_firings(e, o, u, k, seed):
    """expand_firings(node, k) ≡ k firings of node, for random nodes."""
    e = max(e, o)
    rng = np.random.default_rng(seed)
    A = rng.integers(-3, 4, size=(e, u)).astype(float)
    b = rng.integers(-2, 3, size=u).astype(float)
    node = LinearNode(A, b, e, o, u)
    expanded = expand_firings(node, k)
    inputs = rng.normal(size=expanded.peek)
    np.testing.assert_allclose(
        expanded.apply(inputs),
        node.reference_run(inputs, firings=k),
        atol=1e-9,
    )


def test_expand_rejects_bad_k():
    with pytest.raises(ValueError):
        expand_firings(fir2(), 0)
