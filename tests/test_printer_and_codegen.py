"""Printer output and generated-Python source inspection tests."""

import numpy as np
import pytest

from repro.ir import (FilterBuilder, call, compile_work, expr_to_str,
                      work_to_str)
from repro.ir import nodes as N
from repro.profiling import Profiler
from repro.runtime import Channel


class TestPrinter:
    def test_expr_precedence_minimal_parens(self):
        e = N.Bin("+", N.Var("a"), N.Bin("*", N.Var("b"), N.Var("c")))
        assert expr_to_str(e) == "a + b * c"
        e2 = N.Bin("*", N.Bin("+", N.Var("a"), N.Var("b")), N.Var("c"))
        assert expr_to_str(e2) == "(a + b) * c"

    def test_unary_and_calls(self):
        e = N.Un("-", N.Call("sqrt", (N.Peek(N.Const(0)),)))
        assert expr_to_str(e) == "-sqrt(peek(0))"

    def test_statement_forms(self):
        f = FilterBuilder("P", peek=2, pop=1, push=1)
        with f.work():
            t = f.local("t", f.peek(0) + f.peek(1))
            cond = f.if_(t > 0.0)
            with cond:
                f.push(t)
            with cond.otherwise():
                f.push(-t)
            f.pop()
        text = work_to_str(f.build().work)
        assert "if (t > 0.0) {" in text
        assert "} else {" in text
        assert text.startswith("work peek 2 pop 1 push 1 {")

    def test_array_decl_and_for(self):
        f = FilterBuilder("A", peek=1, pop=1, push=1)
        with f.work():
            arr = f.local_array("buf", 4)
            with f.loop("i", 0, 4) as i:
                f.assign(arr[i], 0.0)
            f.push(f.pop_expr())
        text = work_to_str(f.build().work)
        assert "float[4] buf;" in text
        assert "for (int i = 0; i < 4; i++) {" in text


class TestCodegen:
    def _run(self, wf, fields, inputs):
        prof = Profiler()
        fn = compile_work(wf, fields, "t")
        ch_in, ch_out = Channel(), Channel()
        ch_in.push_block(inputs)
        fn(ch_in.peek, ch_in.pop, ch_out.push, fields, prof.bulk)
        return ch_out.snapshot(), prof

    def test_source_attached(self):
        f = FilterBuilder("G", peek=1, pop=1, push=1)
        with f.work():
            f.push(2.0 * f.pop_expr())
        filt = f.build()
        fn = compile_work(filt.work, dict(filt.fields), filt.name)
        assert "def _G(" in fn.__repro_source__
        # pushes normalize with ``* 1.0`` (float-exact, complex-safe)
        assert "* 1.0)" in fn.__repro_source__

    def test_block_level_flop_batching(self):
        """Counts are emitted per straight-line region, once per pass."""
        f = FilterBuilder("Loopy", peek=4, pop=1, push=1)
        with f.work():
            s = f.local("s", 0.0)
            with f.loop("i", 0, 4) as i:
                f.assign(s, s + 1.5 * f.peek(i))
            f.push(s)
            f.pop()
        filt = f.build()
        out, prof = self._run(filt.work, dict(filt.fields),
                              [1.0, 2.0, 3.0, 4.0])
        assert out == [pytest.approx(15.0)]
        assert prof.counts.fmul == 4
        assert prof.counts.fadd == 4

    def test_branch_counts_follow_execution(self):
        f = FilterBuilder("B", peek=1, pop=1, push=1)
        with f.work():
            t = f.local("t", f.pop_expr())
            cond = f.if_(t > 0.0)
            with cond:
                f.push(t * 2.0)
            with cond.otherwise():
                f.push(t)
        filt = f.build()
        out1, p1 = self._run(filt.work, dict(filt.fields), [5.0])
        out2, p2 = self._run(filt.work, dict(filt.fields), [-5.0])
        assert out1 == [10.0] and out2 == [-5.0]
        assert p1.counts.fmul == 1 and p2.counts.fmul == 0

    def test_weird_filter_names_sanitized(self):
        f = FilterBuilder("Adder(10)!", peek=1, pop=1, push=1)
        with f.work():
            f.push(f.pop_expr())
        filt = f.build()
        fn = compile_work(filt.work, dict(filt.fields), filt.name)
        assert "def _Adder_10__(" in fn.__repro_source__

    def test_scalar_field_writeback(self):
        f = FilterBuilder("Acc", peek=1, pop=1, push=1)
        acc = f.state("acc", 0.0)
        with f.work():
            f.assign(acc, acc + f.pop_expr())
            f.push(acc)
        filt = f.build()
        fields = dict(filt.fields)
        fn = compile_work(filt.work, fields, filt.name)
        prof = Profiler()
        ch_in, ch_out = Channel(), Channel()
        ch_in.push_block([1.0, 2.0])
        fn(ch_in.peek, ch_in.pop, ch_out.push, fields, prof.bulk)
        fn(ch_in.peek, ch_in.pop, ch_out.push, fields, prof.bulk)
        assert ch_out.snapshot() == [1.0, 3.0]
        assert fields["acc"] == 3.0

    def test_array_field_shared_in_place(self):
        f = FilterBuilder("Ring", peek=1, pop=1, push=1)
        buf = f.state_array("buf", [0.0, 0.0])
        idx = f.state("idx", 0)
        with f.work():
            f.assign(buf[idx], f.pop_expr())
            f.push(buf[idx])
            f.assign(idx, (idx + 1) % 2)
        filt = f.build()
        fields = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                  for k, v in filt.fields.items()}
        fn = compile_work(filt.work, fields, filt.name)
        ch_in, ch_out = Channel(), Channel()
        ch_in.push_block([7.0, 8.0])
        prof = Profiler()
        fn(ch_in.peek, ch_in.pop, ch_out.push, fields, prof.bulk)
        fn(ch_in.peek, ch_in.pop, ch_out.push, fields, prof.bulk)
        assert list(fields["buf"]) == [7.0, 8.0]

    def test_intrinsics_compile(self):
        f = FilterBuilder("M", peek=2, pop=1, push=1)
        with f.work():
            f.push(call("max", call("abs", f.peek(0)), f.peek(1)))
            f.pop()
        filt = f.build()
        out, _ = self._run(filt.work, dict(filt.fields), [-3.0, 2.0])
        assert out == [3.0]
