"""Channel (tape) semantics tests."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.runtime import Channel


def test_fifo_order():
    ch = Channel("t")
    for v in (1.0, 2.0, 3.0):
        ch.push(v)
    assert [ch.pop(), ch.pop(), ch.pop()] == [1.0, 2.0, 3.0]


def test_peek_does_not_consume():
    ch = Channel()
    ch.push_block([10.0, 20.0])
    assert ch.peek(1) == 20.0
    assert len(ch) == 2
    assert ch.pop() == 10.0


def test_peek_out_of_range():
    ch = Channel("x")
    ch.push(1.0)
    with pytest.raises(InterpError):
        ch.peek(1)
    with pytest.raises(InterpError):
        ch.peek(-1)


def test_pop_empty():
    with pytest.raises(InterpError):
        Channel("e").pop()


def test_block_operations():
    ch = Channel()
    ch.push_array(np.arange(5.0))
    block = ch.peek_block(3)
    np.testing.assert_array_equal(block, [0.0, 1.0, 2.0])
    ch.pop_block(2)
    assert ch.pop() == 2.0
    assert len(ch) == 2


def test_block_underflow():
    ch = Channel()
    ch.push(1.0)
    with pytest.raises(InterpError):
        ch.peek_block(2)
    with pytest.raises(InterpError):
        ch.pop_block(2)


def test_compaction_preserves_contents():
    """Push/pop far past the compaction threshold."""
    ch = Channel()
    expected = []
    n = 20_000
    for i in range(n):
        ch.push(float(i))
        if i % 3 != 0:
            expected.append(ch.pop())
    while len(ch):
        expected.append(ch.pop())
    assert expected[:5] == sorted(expected[:5])
    assert len(expected) == n


def test_pop_block_array_returns_consumed_items():
    ch = Channel()
    ch.push_array(np.arange(6.0))
    got = ch.pop_block_array(4)
    np.testing.assert_array_equal(got, [0.0, 1.0, 2.0, 3.0])
    assert len(ch) == 2
    with pytest.raises(InterpError):
        ch.pop_block_array(3)


def test_push_block_accepts_ndarray():
    ch = Channel()
    ch.push_block(np.array([1.5, 2.5]))
    ch.push_block([3.5])
    assert ch.snapshot() == [1.5, 2.5, 3.5]


def test_compaction_is_proportional_to_buffer():
    """The dead prefix never exceeds the live region (plus slack)."""
    ch = Channel()
    ch.push_block([float(i) for i in range(100_000)])
    for _ in range(99_000):
        ch.pop()
        # head may lag live data by at most max(live, _MIN_COMPACT)
        assert ch._head <= max(len(ch), 64)
    assert len(ch) == 1000
    assert ch.snapshot()[0] == 99_000.0


def test_snapshot():
    ch = Channel()
    ch.push_block([1.0, 2.0, 3.0])
    ch.pop()
    assert ch.snapshot() == [2.0, 3.0]
