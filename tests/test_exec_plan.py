"""The vectorized plan backend: equivalence, FLOP parity, bailouts, rings.

The acceptance bar for ``backend="plan"`` is *observational equivalence*
with the scalar backends: same outputs (to 1e-9), same FLOP counts, same
error behavior — only faster.
"""

import json
import math

import numpy as np
import pytest

from repro.apps import BENCHMARKS, FEEDBACK_APPS, build_app
from repro.bench import CONFIGS, build_config
from repro.bench import main as bench_main
from repro.errors import InterpError
from repro.exec import PlanExecutor, RingBuffer, plan_bailout_reason, \
    plan_executor_for
from repro.exec.kernels import FallbackStep, FeedbackStep, MatmulStep
from repro.graph import FeedbackLoop, Pipeline, RoundRobin
from repro.ir import FilterBuilder
from repro.profiling import CATEGORIES, Profiler
from repro.runtime import (Collector, FunctionSource, ListSource, run_graph,
                           run_stream)
from repro.runtime.executor import FlatGraph

SMALL_PARAMS = {
    "FIR": dict(taps=32),
    "RateConvert": dict(taps=48),
    "TargetDetect": dict(n=24),
    "FMRadio": dict(bands=4, taps=16),
    "Radar": dict(channels=4, beams=2, fir1_taps=4, fir2_taps=2, mf_taps=4),
    "FilterBank": dict(m=3, taps=12),
    "Vocoder": dict(window=16, decimation=8, n_filters=3, taps=12),
    "Oversampler": dict(stages=3, taps=16),
    "DToA": dict(stages=2, taps=12, out_taps=24),
    "Echo": dict(delay=24, gain=0.5, taps=16),
    "VocoderEcho": dict(window=16, decimation=8, n_filters=3, taps=12,
                        echo_delay=16),
    "IIR": dict(),
}
N_OUT = {name: 96 for name in SMALL_PARAMS}
N_OUT["Radar"] = 32

#: FLOP-parity assertions apply to acyclic apps only: feedback islands
#: are value-identical but may fire one extra loop iteration at the tail
#: of a run (the island advances in whole steady units).
PARITY_APPS = sorted(set(BENCHMARKS) - FEEDBACK_APPS)


def small(name):
    return BENCHMARKS[name](**SMALL_PARAMS[name])


def assert_counts_equal(p1: Profiler, p2: Profiler, msg=""):
    for cat in CATEGORIES:
        assert getattr(p1.counts, cat) == getattr(p2.counts, cat), \
            f"{msg}: {cat} differs"


# ---------------------------------------------------------------------------
# Acceptance: every app, plan == interp (values and FLOPs)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_plan_matches_interp_on_all_apps(name):
    p_interp, p_plan = Profiler(), Profiler()
    expected = run_graph(small(name), N_OUT[name], p_interp,
                         backend="interp")
    got = run_graph(small(name), N_OUT[name], p_plan, backend="plan")
    np.testing.assert_allclose(got, expected, atol=1e-9)
    if name not in FEEDBACK_APPS:
        assert_counts_equal(p_interp, p_plan, name)


@pytest.mark.parametrize("name", PARITY_APPS)
def test_plan_matches_compiled_per_filter_profile(name):
    p_c, p_p = Profiler(), Profiler()
    run_graph(small(name), N_OUT[name], p_c, backend="compiled")
    run_graph(small(name), N_OUT[name], p_p, backend="plan")
    assert_counts_equal(p_c, p_p, name)
    assert p_c.per_filter.keys() == p_p.per_filter.keys()


@pytest.mark.parametrize("config", CONFIGS)
def test_plan_runs_optimized_configs(config):
    """Optimized graphs (LinearFilter, freq, redundancy leaves) under plan."""
    base = run_graph(small("FilterBank"), 64)
    p_c, p_p = Profiler(), Profiler()
    compiled = run_graph(build_config(small("FilterBank"), config), 64, p_c)
    planned = run_graph(build_config(small("FilterBank"), config), 64, p_p,
                        backend="plan")
    np.testing.assert_allclose(planned, compiled, atol=1e-8)
    np.testing.assert_allclose(planned, base, atol=1e-7)
    assert_counts_equal(p_c, p_p, config)
    assert p_c.per_filter.keys() == p_p.per_filter.keys()


def test_plan_per_filter_counts_match_for_linear_leaves():
    """LinearFilter leaves attribute per-filter counts identically."""
    p_c, p_p = Profiler(), Profiler()
    run_graph(build_config(small("FIR"), "linear"), 64, p_c)
    run_graph(build_config(small("FIR"), "linear"), 64, p_p, backend="plan")
    assert p_c.per_filter and p_c.per_filter.keys() == p_p.per_filter.keys()
    for name in p_c.per_filter:
        assert p_c.per_filter[name].flops == p_p.per_filter[name].flops


# ---------------------------------------------------------------------------
# Scheduling-semantics parity
# ---------------------------------------------------------------------------


def make_fir(coeffs):
    n = len(coeffs)
    f = FilterBuilder("fir", peek=n, pop=1, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    return f.build()


def test_plan_peeking_filter_waits_for_data():
    out = run_stream(make_fir([1.0] * 4), list(range(10)), 3,
                     backend="plan")
    assert out == [6.0, 10.0, 14.0]


def test_plan_deadlock_detection_matches_scalar():
    with pytest.raises(InterpError, match="deadlock"):
        run_stream(make_fir([1.0, 1.0]), [1.0], 5, backend="plan")


def test_plan_prework_filter_falls_back_correctly():
    f = FilterBuilder("Delay1", peek=1, pop=1, push=1)
    with f.prework(peek=0, pop=0, push=1):
        f.push(0.0)
    with f.work():
        f.push(f.pop_expr())
    out = run_stream(f.build(), [1.0, 2.0, 3.0], 4, backend="plan")
    assert out == [0.0, 1.0, 2.0, 3.0]


def test_plan_stateful_source_exact():
    """Mutable-field filters run through the compiled fallback unchanged."""
    prog = small("FIR")
    a = run_graph(prog, 50, backend="compiled")
    b = run_graph(small("FIR"), 50, backend="plan")
    np.testing.assert_allclose(b, a, atol=1e-9)


def test_plan_executor_chunks_large_runs():
    """Tiny chunk size forces multiple flushes; results unchanged."""
    flat = FlatGraph(small("FIR"), Profiler(), backend="compiled")
    ex = PlanExecutor(flat, chunk_outputs=8)
    out = ex.run(100)
    expected = run_graph(small("FIR"), 100)
    np.testing.assert_allclose(out, expected, atol=1e-9)


def test_plan_repeated_run_extends():
    flat = FlatGraph(small("FIR"), Profiler(), backend="compiled")
    ex = PlanExecutor(flat)
    first = ex.run(10)
    more = ex.run(30)
    expected = run_graph(small("FIR"), 30)
    assert more[:10] == first
    np.testing.assert_allclose(more, expected, atol=1e-9)


# ---------------------------------------------------------------------------
# Feedback islands and bailouts
# ---------------------------------------------------------------------------


def make_feedback_program(enqueued=(0.0,)):
    g = FilterBuilder("AddDup", peek=2, pop=2, push=2)
    with g.work():
        t = g.local("t", g.pop_expr() + g.pop_expr())
        g.push(t)
        g.push(t)
    from repro.runtime import Identity
    return FeedbackLoop(body=g.build(), loop=Identity("fb"),
                        joiner=RoundRobin((1, 1)),
                        splitter=RoundRobin((1, 1)), enqueued=enqueued)


def test_feedback_loop_runs_as_island():
    """A FeedbackLoop no longer forfeits the plan backend: the cycle
    becomes a FeedbackStep island and values match the scalar backends."""
    loop = make_feedback_program()
    prog = Pipeline([ListSource([1, 2, 3, 4]), loop, Collector()])
    assert plan_bailout_reason(prog) is None
    ex = plan_executor_for(prog, cache=False)
    assert isinstance(ex, PlanExecutor)
    assert any(isinstance(s, FeedbackStep) for s in ex.steps)
    out = run_stream(make_feedback_program(), [1.0, 2.0, 3.0, 4.0], 4,
                     backend="plan")
    assert out == [1.0, 3.0, 6.0, 10.0]


def test_feedback_island_nonloop_regions_stay_batched():
    """Hybrid islanding: nodes outside the cycle keep batched kernels."""
    from repro.apps import echo
    ex = plan_executor_for(echo.build(**SMALL_PARAMS["Echo"]), cache=False)
    kinds = [s.kind for s in ex.steps]
    assert "feedback" in kinds
    assert "matmul" in kinds  # the low-pass conditioner outside the loop
    fstep = next(s for s in ex.steps if isinstance(s, FeedbackStep))
    member_kinds = {m.step.kind for m in fstep.members}
    assert "matmul" in member_kinds  # the linear loop body, batched


def test_feedback_island_chunked_and_repeated_runs():
    """Island state survives chunk flushes and incremental runs."""
    from repro.apps import echo
    prog = echo.build(**SMALL_PARAMS["Echo"])
    flat = FlatGraph(prog, Profiler(), backend="compiled")
    ex = PlanExecutor(flat, chunk_outputs=16)  # many flushes
    first = ex.run(50)
    more = ex.run(200)
    expected = run_graph(echo.build(**SMALL_PARAMS["Echo"]), 200)
    assert more[:50] == first
    np.testing.assert_allclose(more, expected, atol=1e-9)


def test_feedback_island_with_zero_delay_bails_out():
    """No enqueued items = no lookahead: the cycle cannot start, the
    probe reports it, and the plan bails to compiled."""
    loop = make_feedback_program(enqueued=())
    prog = Pipeline([ListSource([1, 2, 3, 4]), loop, Collector()])
    reason = plan_bailout_reason(prog)
    assert reason is not None and "feedback island" in reason


def test_feedback_island_with_inner_source_bails_out():
    """A source inside a cycle fires unboundedly: not islandable."""
    from repro.graph.streams import Pipeline as P
    body = Pipeline([make_fir([1.0, 0.5])], name="body")
    loop_path = P([FunctionSource(lambda n: 0.0, "inner-src")],
                  name="loop")
    fb = FeedbackLoop(body=body, loop=loop_path,
                      joiner=RoundRobin((1, 1)),
                      splitter=RoundRobin((1, 1)), enqueued=[0.0])
    prog = Pipeline([ListSource([1.0] * 8), fb, Collector()])
    reason = plan_bailout_reason(prog)
    assert reason is not None and "feedback island" in reason


def test_plannable_program_has_no_bailout_reason():
    assert plan_bailout_reason(small("FilterBank")) is None
    ex = plan_executor_for(small("FIR"))
    assert isinstance(ex, PlanExecutor)


def test_linear_filters_get_matmul_steps():
    ex = plan_executor_for(small("FIR"))
    kinds = {type(s).__name__ for s in ex.steps}
    assert "MatmulStep" in kinds  # the 32-tap low-pass
    assert any(isinstance(s, FallbackStep) for s in ex.steps)  # ramp source


def test_frequency_filters_get_batched_fft_steps():
    """Freq-rewritten graphs run OptimizedFreqStep, not FallbackStep."""
    from repro.exec.kernels import OptimizedFreqStep
    stream = build_config(small("FIR"), "freq")
    ex = plan_executor_for(stream, cache=False)
    assert any(isinstance(s, OptimizedFreqStep) for s in ex.steps)


def test_naive_freq_filter_gets_batched_step():
    from repro.exec.kernels import NaiveFreqStep
    from repro.frequency import maximal_frequency_replacement
    stream = maximal_frequency_replacement(small("FIR"), strategy="naive")
    ex = plan_executor_for(stream, cache=False)
    assert any(isinstance(s, NaiveFreqStep) for s in ex.steps)
    p_c, p_p = Profiler(), Profiler()
    compiled = run_graph(stream, 96, p_c)
    planned = run_graph(
        maximal_frequency_replacement(small("FIR"), strategy="naive"),
        96, p_p, backend="plan")
    np.testing.assert_allclose(planned, compiled, atol=1e-8)
    assert_counts_equal(p_c, p_p, "naive-freq")


def test_freq_step_partials_survive_chunk_flushes():
    """OptimizedFreqStep carries partial sums across flush boundaries."""
    stream = build_config(small("FIR"), "freq")
    flat = FlatGraph(stream, Profiler(), backend="compiled")
    ex = PlanExecutor(flat, chunk_outputs=16)  # many flushes
    out = ex.run(400)
    expected = run_graph(build_config(small("FIR"), "freq"), 400)
    np.testing.assert_allclose(out, expected, atol=1e-8)


# ---------------------------------------------------------------------------
# The optimizing pipeline (optimize=)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["none", "linear", "freq", "auto"])
@pytest.mark.parametrize("name", ["FIR", "FilterBank", "Radar", "Vocoder"])
def test_optimize_modes_preserve_outputs(name, mode):
    expected = run_graph(small(name), N_OUT[name], backend="compiled")
    got = run_graph(small(name), N_OUT[name], backend="plan", optimize=mode)
    np.testing.assert_allclose(got, expected, atol=1e-7,
                               err_msg=f"{name}/{mode}")


def test_optimize_auto_flops_match_selection_dp():
    """The auto plan executes exactly the DP's predicted implementation."""
    from repro.selection import select_optimizations
    p_plan, p_pred = Profiler(), Profiler()
    run_graph(small("FilterBank"), 96, p_plan, backend="plan",
              optimize="auto")
    predicted = select_optimizations(small("FilterBank"),
                                     cost_model="batched",
                                     stateful=True).stream
    run_graph(predicted, 96, p_pred, backend="compiled")
    assert_counts_equal(p_plan, p_pred, "auto-vs-dp")


def test_optimize_rejects_unknown_mode():
    from repro.exec import optimize_stream
    with pytest.raises(ValueError, match="unknown optimize mode"):
        optimize_stream(small("FIR"), "bogus")


def test_plan_report_names_fallbacks_with_reasons():
    from repro.exec import plan_report
    rep = plan_report(small("Radar"))
    assert rep.bailout is None
    assert rep.fallbacks
    reasons = {s.name: s.reason for s in rep.fallbacks}
    assert any("mutable state" in r for r in reasons.values())
    assert any("data-dependent control flow" in r for r in reasons.values())
    text = str(rep)
    assert "fallback" in text and "InputGenerate0" in text


def test_plan_report_names_feedback_island():
    from repro.exec import plan_report
    loop = make_feedback_program()
    prog = Pipeline([ListSource([1, 2, 3, 4]), loop, Collector()])
    rep = plan_report(prog)
    assert rep.bailout is None
    assert any(s.step_kind == "feedback" for s in rep.steps)
    assert len(rep.islands) == 1
    isl = rep.islands[0]
    assert isl.delay == 1 and isl.rates.pop == 1 and isl.rates.push == 1
    member_kinds = {s.step_kind for s in isl.steps}
    assert "matmul" in member_kinds  # the linear AddDup body
    text = str(rep)
    assert "feedback island" in text and "AddDup" in text


def test_plan_report_on_bailout_graph():
    from repro.exec import plan_report
    loop = make_feedback_program(enqueued=())  # zero delay: unplannable
    prog = Pipeline([ListSource([1, 2, 3, 4]), loop, Collector()])
    rep = plan_report(prog)
    assert rep.bailout is not None and "feedback island" in rep.bailout
    assert "bailout" in str(rep)


def test_nonlinear_filters_fall_back():
    f = FilterBuilder("Square", peek=1, pop=1, push=1)
    with f.work():
        v = f.local("v", f.pop_expr())
        f.push(v * v)
    prog = Pipeline([FunctionSource(lambda n: float(n), "src"), f.build(),
                     Collector()])
    ex = plan_executor_for(prog)
    assert isinstance(ex, PlanExecutor)
    assert not any(isinstance(s, MatmulStep) for s in ex.steps)
    out = run_graph(prog, 8, backend="plan")
    assert out == [float(i * i) for i in range(8)]


# ---------------------------------------------------------------------------
# Ring buffers
# ---------------------------------------------------------------------------


def test_ring_fifo_and_peek():
    r = RingBuffer("t")
    for v in (1.0, 2.0, 3.0):
        r.push(v)
    assert len(r) == 3
    assert r.peek(2) == 3.0
    assert [r.pop(), r.pop(), r.pop()] == [1.0, 2.0, 3.0]
    with pytest.raises(InterpError):
        r.pop()
    with pytest.raises(InterpError):
        r.peek(0)


def test_ring_blocks_and_windows():
    r = RingBuffer()
    r.push_array(np.arange(8.0))
    np.testing.assert_array_equal(r.peek_block(3), [0.0, 1.0, 2.0])
    w = r.window_view(3, 2, 4)  # windows at stride 2, width 4
    np.testing.assert_array_equal(
        w, [[0, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7]])
    np.testing.assert_array_equal(r.pop_block_array(2), [0.0, 1.0])
    assert r.snapshot() == [2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    with pytest.raises(InterpError):
        r.window_view(4, 2, 4)


def test_ring_growth_and_compaction():
    r = RingBuffer(capacity=64)
    expected = []
    for i in range(50_000):
        r.push(float(i))
        if i % 3 != 0:
            expected.append(r.pop())
    while len(r):
        expected.append(r.pop())
    assert expected == sorted(expected)
    assert len(expected) == 50_000


def test_ring_push_block_iterable():
    r = RingBuffer()
    r.push_block([1.0, 2.0])
    r.push_block(np.array([3.0, 4.0]))
    assert r.snapshot() == [1.0, 2.0, 3.0, 4.0]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_bench_cli_single_backend(capsys):
    assert bench_main(["--app", "fir", "--backend", "plan",
                       "--outputs", "256"]) == 0
    record = json.loads(capsys.readouterr().out.strip())
    assert record["app"] == "FIR"
    assert record["backend"] == "plan"
    assert record["outputs"] == 256
    assert record["flops"] > 0 and record["seconds"] > 0


def test_bench_cli_compare_mode(capsys):
    """--compare emits the full backend x optimize matrix, one record
    per cell, plus wall-clock speedup summaries."""
    assert bench_main(["--app", "fir", "--compare",
                       "--outputs", "512"]) == 0
    record = json.loads(capsys.readouterr().out.strip())
    assert record["flops_equal"] is True
    assert record["speedup"] > 0
    assert record["speedup_auto"] > 0 and record["auto_vs_plan"] > 0
    cells = {(c["backend"], c["optimize"]): c for c in record["cells"]}
    from repro.exec import OPTIMIZE_MODES
    assert set(cells) == {(b, m) for b in ("compiled", "plan")
                          for m in OPTIMIZE_MODES}
    # FLOP parity within each optimize mode across backends; the auto
    # cell realizes the DP's predicted implementation on both backends
    for mode in OPTIMIZE_MODES:
        assert cells[("compiled", mode)]["flops"] == \
            cells[("plan", mode)]["flops"], mode
    assert all(c["seconds"] > 0 for c in record["cells"])


def test_bench_cli_optimize_flag(capsys):
    assert bench_main(["--app", "fir", "--backend", "plan",
                       "--optimize", "auto", "--outputs", "256"]) == 0
    record = json.loads(capsys.readouterr().out.strip())
    assert record["optimize"] == "auto"
    assert record["flops"] > 0


def test_bench_cli_plan_report(capsys):
    assert bench_main(["--app", "radar", "--plan-report"]) == 0
    text = capsys.readouterr().out
    assert "plan report: Radar" in text
    assert "fallback" in text
    assert "mutable state fields" in text  # the stateful InputGenerate


def test_build_app_case_insensitive():
    prog, name = build_app("filterbank", m=3, taps=12)
    assert name == "FilterBank"
    with pytest.raises(KeyError):
        build_app("nope")
