"""Redundancy analysis and elimination tests (thesis §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linear import LinearFilter, LinearNode
from repro.profiling import Profiler
from repro.redundancy import (RedundancyEliminationFilter, analyze_redundancy,
                              redundancy_ratio)
from repro.runtime import run_stream


def symmetric_fir(coeffs_half, odd_center=None):
    """Build a symmetric FIR node like the thesis' Figure 4-1 example."""
    coeffs = list(coeffs_half)
    if odd_center is not None:
        coeffs = coeffs + [odd_center] + coeffs[::-1]
    else:
        coeffs = coeffs + coeffs[::-1]
    return LinearNode.from_coefficients([coeffs], [0.0], pop=1)


def test_figure_4_1_example():
    """SimpleFIR: push(2*peek(2) + peek(1) + 2*peek(0)).

    2*peek(2) now equals 2*peek(0) two firings later: one reused tuple.
    """
    node = LinearNode.from_coefficients([[2.0, 1.0, 2.0]], [0.0], pop=1)
    info = analyze_redundancy(node)
    assert (2.0, 2) in info.reused
    assert info.max_use[(2.0, 2)] == 2
    # 3 direct mults -> 2 after caching (store 2*peek(2), reuse it; the
    # center tap 1*peek(1) and... coefficient 1 at peek(1) is unique)
    assert info.mults_per_firing() == 2
    assert redundancy_ratio(node) == pytest.approx(1 / 3)


def test_even_symmetric_fir_caches_all_pairs():
    node = symmetric_fir([1.5, 2.5, 3.5])  # 6 taps, all pairs distinct
    info = analyze_redundancy(node)
    # every pair (c, far-pos) is reused; mults = 3 stores + 0 fresh
    assert info.mults_per_firing() == 3
    assert redundancy_ratio(node) == pytest.approx(0.5)


def test_odd_symmetric_fir_center_not_cached():
    node = symmetric_fir([1.5, 2.5, 3.5], odd_center=9.0)  # 7 taps
    info = analyze_redundancy(node)
    # 3 stored pairs + 1 fresh center tap
    assert info.mults_per_firing() == 4
    assert redundancy_ratio(node) == pytest.approx(1 - 4 / 7)


def test_zigzag_even_odd(  ):
    """Fig 5-10's zig-zag: size N+1 (even) removes more than size N (odd)."""
    def remaining(n):
        half = [float(i + 1) for i in range(n // 2)]
        node = symmetric_fir(half, odd_center=99.0) if n % 2 else \
            symmetric_fir(half)
        info = analyze_redundancy(node)
        return info.mults_per_firing()

    assert remaining(7) == 4 and remaining(8) == 4
    assert remaining(9) == 5 and remaining(10) == 5


def test_no_redundancy_when_coeffs_unique():
    node = LinearNode.from_coefficients([[1.0, 2.0, 3.0]], [0.0], pop=1)
    info = analyze_redundancy(node)
    assert not info.reused
    assert info.mults_per_firing() == 3


def test_pop_greater_than_one_shrinks_horizon():
    """With o = e the window never overlaps: nothing is reusable."""
    node = LinearNode.from_coefficients([[2.0, 1.0, 2.0]], [0.0], pop=3)
    info = analyze_redundancy(node)
    assert not info.reused


def test_zero_coefficients_ignored():
    node = LinearNode.from_coefficients([[0.0, 5.0, 0.0, 5.0]], [0.0], pop=1)
    info = analyze_redundancy(node)
    assert all(t[0] != 0.0 for t in info.uses)


# ---------------------------------------------------------------------------
# runtime filter equivalence
# ---------------------------------------------------------------------------


def assert_equivalent(node, n_out=60, seed=3):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=node.peek + node.pop * (n_out + 8)).tolist()
    plain = run_stream(LinearFilter(node), inputs, n_out)
    cached = run_stream(RedundancyEliminationFilter(node), inputs, n_out)
    np.testing.assert_allclose(cached, plain, atol=1e-12)


def test_filter_equivalence_symmetric():
    assert_equivalent(symmetric_fir([1.0, 2.0, 3.0, 4.0]))


def test_filter_equivalence_odd():
    assert_equivalent(symmetric_fir([1.0, 2.0], odd_center=7.0))


def test_filter_equivalence_multi_output():
    node = LinearNode.from_coefficients(
        [[2.0, 1.0, 2.0], [1.0, 2.0, 1.0]], [0.5, -0.5], pop=1)
    assert_equivalent(node)


def test_filter_equivalence_with_pop2():
    node = LinearNode.from_coefficients(
        [[3.0, 1.0, 3.0, 1.0, 3.0, 1.0]], [0.0], pop=2)
    assert_equivalent(node)


def test_flop_accounting_matches_plan():
    node = symmetric_fir([1.0, 2.0, 3.0])
    filt = RedundancyEliminationFilter(node)
    prof = Profiler()
    n_out = 50
    inputs = list(np.random.default_rng(0).normal(size=200))
    run_stream(filt, inputs, n_out, profiler=prof)
    info = analyze_redundancy(node)
    priming = sum(info.max_use[t] for t in info.reused)
    assert prof.counts.fmul == info.mults_per_firing() * n_out + priming


def test_redundant_filter_saves_mults_vs_direct():
    node = symmetric_fir([float(i + 1) for i in range(16)])  # 32 taps
    inputs = list(np.random.default_rng(1).normal(size=400))
    p_direct, p_cached = Profiler(), Profiler()
    run_stream(LinearFilter(node), inputs, 100, profiler=p_direct)
    run_stream(RedundancyEliminationFilter(node), inputs, 100,
               profiler=p_cached)
    assert p_cached.counts.fmul < 0.6 * p_direct.counts.fmul


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), o=st.integers(1, 3), seed=st.integers(0, 500))
def test_property_equivalence_random_symmetric(n, o, seed):
    rng = np.random.default_rng(seed)
    half = rng.integers(1, 4, size=n // 2).astype(float).tolist()
    coeffs = half + ([5.0] if n % 2 else []) + half[::-1]
    e = max(len(coeffs), o)
    coeffs += [0.0] * (e - len(coeffs))
    node = LinearNode.from_coefficients([coeffs], [0.0], pop=o, peek=e)
    assert_equivalent(node, n_out=20, seed=seed)
