"""The original Python graph builders for all twelve benchmarks.

These are the hand-written ``FilterBuilder`` constructions that used to
live under ``repro.apps``.  The apps are now elaborated from canonical
``.str`` DSL sources; this module preserves the builder versions
verbatim as the baseline for the DSL-vs-builder differential tests
(``test_app_dsl_differential.py``): each DSL-elaborated app must match
its builder graph bitwise on the scalar backends and to 1e-9 (with an
identical FLOP count) on the plan backend.

Only names were adjusted for the flat module (per-app prefixes where
apps used the same identifier); every expression tree is unchanged.
"""

from __future__ import annotations

import math

from repro.graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                                 RoundRobin, SplitJoin)
from repro.ir import FilterBuilder, call
from repro.runtime.builtins import Collector

# ---------------------------------------------------------------------------
# common
# ---------------------------------------------------------------------------


def lowpass_coeffs(gain: float, cutoff: float, taps: int) -> list[float]:
    offset = taps // 2
    coeffs = []
    for i in range(taps):
        idx = i + 1
        if idx == offset:
            coeffs.append(gain * cutoff / math.pi)
        else:
            coeffs.append(gain * math.sin(cutoff * (idx - offset))
                          / (math.pi * (idx - offset)))
    return coeffs


def highpass_coeffs(gain: float, ws: float, taps: int) -> list[float]:
    low = lowpass_coeffs(1.0, ws, taps)
    coeffs = [-gain * c for c in low]
    center = taps // 2 - 1
    coeffs[center] += gain
    return coeffs


def fir_filter(name: str, coeffs, decimation: int = 0) -> Filter:
    n = len(coeffs)
    pop = 1 + decimation
    f = FilterBuilder(name, peek=max(n, pop), pop=pop, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        with f.loop("i", 0, pop):
            f.pop()
    return f.build()


def low_pass_filter(gain: float, cutoff: float, taps: int,
                    decimation: int = 0,
                    name: str = "LowPassFilter") -> Filter:
    return fir_filter(name, lowpass_coeffs(gain, cutoff, taps), decimation)


def high_pass_filter(gain: float, ws: float, taps: int,
                     name: str = "HighPassFilter") -> Filter:
    return fir_filter(name, highpass_coeffs(gain, ws, taps))


def band_pass_filter(gain: float, ws: float, wp: float,
                     taps: int, name: str = "BandPassFilter") -> Pipeline:
    return Pipeline([
        low_pass_filter(1.0, wp, taps),
        high_pass_filter(gain, ws, taps),
    ], name=name)


def band_stop_filter(gain: float, wp: float, ws: float,
                     taps: int, name: str = "BandStopFilter") -> Pipeline:
    return Pipeline([
        SplitJoin(Duplicate(),
                  [low_pass_filter(gain, wp, taps),
                   high_pass_filter(gain, ws, taps)],
                  RoundRobin((1, 1)), name=f"{name}.split"),
        adder(2),
    ], name=name)


def compressor(m: int, name: str | None = None) -> Filter:
    f = FilterBuilder(name or f"Compressor({m})", peek=m, pop=m, push=1)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, m - 1):
            f.pop()
    return f.build()


def expander(l: int, name: str | None = None) -> Filter:
    f = FilterBuilder(name or f"Expander({l})", peek=1, pop=1, push=l)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, l - 1):
            f.push(0.0)
    return f.build()


def adder(n: int, name: str | None = None) -> Filter:
    f = FilterBuilder(name or f"Adder({n})", peek=n, pop=n, push=1)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + f.peek(i))
        f.push(s)
        with f.loop("i", 0, n):
            f.pop()
    return f.build()


def float_diff(name: str = "FloatDiff") -> Filter:
    f = FilterBuilder(name, peek=2, pop=2, push=1)
    with f.work():
        f.push(f.peek(0) - f.peek(1))
        f.pop()
        f.pop()
    return f.build()


def float_dup(name: str = "FloatDup") -> Filter:
    f = FilterBuilder(name, peek=1, pop=1, push=2)
    with f.work():
        v = f.local("val", f.pop_expr())
        f.push(v)
        f.push(v)
    return f.build()


def delay(name: str = "Delay") -> Filter:
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    with f.prework(peek=0, pop=0, push=1):
        f.push(0.0)
    with f.work():
        f.push(f.pop_expr())
    return f.build()


def ramp_source(period: int = 16, name: str = "FloatSource") -> Filter:
    f = FilterBuilder(name, peek=0, pop=0, push=1)
    idx = f.state("idx", 0)
    data = f.const_array("inputs", [float(i) for i in range(period)])
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % period)
    return f.build()


def cosine_source(w: float, name: str = "SampledSource") -> Filter:
    f = FilterBuilder(name, peek=0, pop=0, push=1)
    n = f.state("n", 0)
    wc = f.const("w", w)
    with f.work():
        f.push(call("cos", wc * n))
        f.assign(n, n + 1)
    return f.build()


def multi_sine_source(name: str = "DataSource", size: int = 100) -> Filter:
    values = []
    for i in range(size):
        t = float(i)
        values.append(math.sin(2 * math.pi * t / size)
                      + math.sin(2 * math.pi * 1.7 * t / size + math.pi / 3)
                      + math.sin(2 * math.pi * 2.1 * t / size + math.pi / 5))
    f = FilterBuilder(name, peek=0, pop=0, push=1)
    data = f.const_array("data", values)
    idx = f.state("index", 0)
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % size)
    return f.build()


def printer(name: str = "FloatPrinter") -> Collector:
    return Collector(name)


# ---------------------------------------------------------------------------
# FIR
# ---------------------------------------------------------------------------


def fir_build(taps: int = 256) -> Pipeline:
    return Pipeline([
        ramp_source(),
        low_pass_filter(1.0, math.pi / 3, taps),
        printer(),
    ], name="FIRProgram")


# ---------------------------------------------------------------------------
# RateConvert
# ---------------------------------------------------------------------------


def ratec_build(taps: int = 300) -> Pipeline:
    return Pipeline([
        cosine_source(math.pi / 10),
        Pipeline([
            expander(2),
            low_pass_filter(3.0, math.pi / 3, taps),
            compressor(3),
        ], name="converter"),
        printer(),
    ], name="SamplingRateConverter")


# ---------------------------------------------------------------------------
# TargetDetect
# ---------------------------------------------------------------------------


def _matched_coeffs(kind: int, n: int) -> list[float]:
    coeffs = []
    for i in range(n):
        pos = float(i)
        if kind == 1:  # triangle minus mean
            v = (pos * 2 / n) if pos < n / 2 else (2 - pos * 2 / n)
            coeffs.append(v - 0.5)
        elif kind == 2:  # half sine, shifted
            coeffs.append(math.sin(math.pi * pos / n) / (2 * math.pi) - 1.0)
        elif kind == 3:  # full sine (zero mean)
            coeffs.append(math.sin(2 * math.pi * pos / n) / (2 * math.pi))
        else:  # time-reversed ramp
            coeffs.append(0.0)
    if kind == 4:
        for i in range(n):
            coeffs[n - 1 - i] = 0.5 * (float(i) / n - 0.5)
    return coeffs


def target_source(n: int) -> Filter:
    f = FilterBuilder("TargetSource", peek=0, pop=0, push=1)
    pos = f.state("currentPosition", 0)
    nn = f.const("N", n)
    with f.work():
        v = f.local("v", 0.0)
        in_target = f.if_((pos >= nn).logical_and(pos < 2 * nn))
        with in_target:
            tri = f.local("tri", 0.0)
            f.assign(tri, pos - nn)
            first_half = f.if_(tri < nn / 2)
            with first_half:
                f.assign(v, tri * 2.0 / nn)
            with first_half.otherwise():
                f.assign(v, 2.0 - tri * 2.0 / nn)
        f.push(v)
        f.assign(pos, (pos + 1) % (4 * nn))
    return f.build()


def threshold_detector(number: int, threshold: float) -> Filter:
    f = FilterBuilder(f"ThresholdDetector{number}", peek=1, pop=1, push=1)
    with f.work():
        t = f.local("t", f.pop_expr())
        cond = f.if_(t > threshold)
        with cond:
            f.push(float(number))
        with cond.otherwise():
            f.push(0.0)
    return f.build()


def td_build(n: int = 300, threshold: float = 8.0) -> Pipeline:
    branches = [
        Pipeline([
            fir_filter(f"MatchedFilter{k}", _matched_coeffs(k, n)),
            threshold_detector(k, threshold),
        ], name=f"branch{k}")
        for k in (1, 2, 3, 4)
    ]
    return Pipeline([
        target_source(n),
        SplitJoin(Duplicate(), branches, RoundRobin((1, 1, 1, 1)),
                  name="TargetDetectSplitJoin"),
        printer(),
    ], name="TargetDetect")


# ---------------------------------------------------------------------------
# FMRadio
# ---------------------------------------------------------------------------

SAMPLING_RATE = 200_000.0
CUTOFF_FREQUENCY = 108_000_000.0
MAX_AMPLITUDE = 27_000.0
BANDWIDTH = 10_000.0


def _fm_lowpass_coeffs(rate: float, cutoff: float, taps: int) -> list[float]:
    pi = math.pi
    m = taps - 1
    if cutoff == 0.0:
        raw = [0.54 - 0.46 * math.cos(2 * pi * i / m) for i in range(taps)]
        total = sum(raw)
        return [c / total for c in raw]
    w = 2 * pi * cutoff / rate
    coeffs = []
    for i in range(taps):
        if i - m / 2 == 0:
            coeffs.append(w / pi)
        else:
            coeffs.append(
                math.sin(w * (i - m / 2)) / pi / (i - m / 2)
                * (0.54 - 0.46 * math.cos(2 * pi * i / m)))
    return coeffs


def fm_lowpass(rate: float, cutoff: float, taps: int, decimation: int,
               name: str) -> Filter:
    return fir_filter(name, _fm_lowpass_coeffs(rate, cutoff, taps),
                      decimation=decimation)


def fm_demodulator(rate: float, max_amp: float, bandwidth: float) -> Filter:
    gain = max_amp * rate / (bandwidth * math.pi)
    f = FilterBuilder("FMDemodulator", peek=2, pop=1, push=1)
    g = f.const("mGain", gain)
    with f.work():
        f.push(g * call("atan", f.peek(0) * f.peek(1)))
        f.pop()
    return f.build()


def counter_source() -> Filter:
    f = FilterBuilder("FloatOneSource", peek=0, pop=0, push=1)
    x = f.state("x", 0.0)
    with f.work():
        f.push(x)
        f.assign(x, x + 1.0)
    return f.build()


def fm_equalizer(rate: float, bands: int = 10, low: float = 55.0,
                 high: float = 1760.0, taps: int = 64) -> Pipeline:
    cutoffs = [
        math.exp(i * (math.log(high) - math.log(low)) / bands
                 + math.log(low))
        for i in range(1, bands)
    ]
    inner = SplitJoin(
        Duplicate(),
        [Pipeline([
            fm_lowpass(rate, c, taps, 0, f"LowPass@{c:.0f}Hz"),
            float_dup(),
         ], name=f"EqualizerInnerPipeline{i}")
         for i, c in enumerate(cutoffs)],
        RoundRobin(tuple([2] * len(cutoffs))),
        name="EqualizerInnerSplitJoin")
    outer = SplitJoin(
        Duplicate(),
        [fm_lowpass(rate, high, taps, 0, "LowPassHigh"),
         inner,
         fm_lowpass(rate, low, taps, 0, "LowPassLow")],
        RoundRobin((1, (bands - 1) * 2, 1)),
        name="EqualizerSplitJoin")
    return Pipeline([
        outer,
        float_diff(),
        adder(bands, name=f"FloatNAdder({bands})"),
    ], name="Equalizer")


def fmradio_build(bands: int = 10, taps: int = 64) -> Pipeline:
    return Pipeline([
        counter_source(),
        Pipeline([
            fm_lowpass(SAMPLING_RATE, CUTOFF_FREQUENCY, taps, 4,
                       "FrontLowPass"),
            fm_demodulator(SAMPLING_RATE, MAX_AMPLITUDE, BANDWIDTH),
            fm_equalizer(SAMPLING_RATE, bands=bands, taps=taps),
        ], name="FMRadio"),
        printer(),
    ], name="LinkedFMTest")


# ---------------------------------------------------------------------------
# Radar
# ---------------------------------------------------------------------------


def _radar_coeffs(seed: int, n: int) -> list[float]:
    return [math.sin(0.7 * seed + 1.3 * k + 0.5) for k in range(n)]


def input_generate(channel: int) -> Filter:
    f = FilterBuilder(f"InputGenerate{channel}", peek=0, pop=0, push=2)
    n = f.state("n", 0)
    phase = f.const("phase", 0.25 * channel)
    with f.work():
        f.push(call("sin", 0.1 * n + phase))
        f.push(call("cos", 0.05 * n + phase))
        f.assign(n, n + 1)
    return f.build()


def complex_fir(name: str, taps: int, decimation: int = 1,
                seed: int = 1) -> Filter:
    hr = _radar_coeffs(seed, taps)
    hi = _radar_coeffs(seed + 17, taps)
    f = FilterBuilder(name, peek=max(2 * taps, 2 * decimation),
                      pop=2 * decimation, push=2)
    chr_ = f.const_array("hr", hr)
    chi = f.const_array("hi", hi)
    with f.work():
        re = f.local("re", 0.0)
        im = f.local("im", 0.0)
        with f.loop("k", 0, taps) as k:
            f.assign(re, re + chr_[k] * f.peek(2 * k)
                     - chi[k] * f.peek(2 * k + 1))
            f.assign(im, im + chr_[k] * f.peek(2 * k + 1)
                     + chi[k] * f.peek(2 * k))
        f.push(re)
        f.push(im)
        with f.loop("k", 0, 2 * decimation):
            f.pop()
    return f.build()


def beamform(beam: int, channels: int) -> Filter:
    wr = _radar_coeffs(100 + beam, channels)
    wi = _radar_coeffs(200 + beam, channels)
    f = FilterBuilder(f"Beamform{beam}", peek=2 * channels,
                      pop=2 * channels, push=2)
    cwr = f.const_array("wr", wr)
    cwi = f.const_array("wi", wi)
    with f.work():
        re = f.local("re", 0.0)
        im = f.local("im", 0.0)
        with f.loop("c", 0, channels) as c:
            f.assign(re, re + cwr[c] * f.peek(2 * c)
                     - cwi[c] * f.peek(2 * c + 1))
            f.assign(im, im + cwr[c] * f.peek(2 * c + 1)
                     + cwi[c] * f.peek(2 * c))
        f.push(re)
        f.push(im)
        with f.loop("c", 0, 2 * channels):
            f.pop()
    return f.build()


def magnitude() -> Filter:
    f = FilterBuilder("Magnitude", peek=2, pop=2, push=1)
    with f.work():
        re = f.local("re", f.pop_expr())
        im = f.local("im", f.pop_expr())
        f.push(call("sqrt", re * re + im * im))
    return f.build()


def detector(threshold: float = 0.5) -> Filter:
    f = FilterBuilder("Detector", peek=1, pop=1, push=1)
    with f.work():
        v = f.local("v", f.pop_expr())
        hit = f.if_(v > threshold)
        with hit:
            f.push(v)
        with hit.otherwise():
            f.push(0.0)
    return f.build()


def radar_build(channels: int = 12, beams: int = 4, fir1_taps: int = 8,
                fir2_taps: int = 4, mf_taps: int = 8,
                decimation: int = 1) -> Pipeline:
    channel_pipes = [
        Pipeline([
            input_generate(c),
            complex_fir(f"BeamFir1_{c}", fir1_taps, decimation, seed=c),
            complex_fir(f"BeamFir2_{c}", fir2_taps, 1, seed=c + 31),
        ], name=f"channel{c}")
        for c in range(channels)
    ]
    channel_sj = SplitJoin(
        Duplicate(), channel_pipes, RoundRobin(tuple([2] * channels)),
        name="ChannelSplitJoin")
    beam_pipes = [
        Pipeline([
            beamform(b, channels),
            complex_fir(f"BeamFirMF_{b}", mf_taps, 1, seed=300 + b),
            magnitude(),
            detector(),
        ], name=f"beam{b}")
        for b in range(beams)
    ]
    beam_sj = SplitJoin(Duplicate(), beam_pipes,
                        RoundRobin(tuple([1] * beams)),
                        name="BeamSplitJoin")
    return Pipeline([
        channel_sj,
        beam_sj,
        printer(),
    ], name="Radar")


# ---------------------------------------------------------------------------
# FilterBank
# ---------------------------------------------------------------------------


def fb_data_source() -> Filter:
    f = FilterBuilder("DataSource", peek=0, pop=0, push=1)
    n = f.state("n", 0)
    with f.work():
        f.push(call("cos", (math.pi / 10) * n)
               + call("cos", (math.pi / 20) * n)
               + call("cos", (math.pi / 30) * n))
        f.assign(n, n + 1)
    return f.build()


def process_filter(order: int) -> Filter:
    f = FilterBuilder(f"ProcessFilter{order}", peek=1, pop=1, push=1)
    with f.work():
        f.push(f.pop_expr())
    return f.build()


def processing_pipeline(m: int, i: int, taps: int) -> Pipeline:
    low = i * math.pi / m
    high = (i + 1) * math.pi / m
    return Pipeline([
        Pipeline([
            band_pass_filter(1.0, low, high, taps),
            compressor(m),
        ], name=f"analysis{i}"),
        process_filter(i),
        Pipeline([
            expander(m),
            band_stop_filter(float(m), low, high, taps),
        ], name=f"synthesis{i}"),
    ], name=f"ProcessingPipeline{i}")


def fb_build(m: int = 3, taps: int = 100) -> Pipeline:
    bank = SplitJoin(
        Duplicate(),
        [processing_pipeline(m, i, taps) for i in range(m)],
        RoundRobin(tuple([1] * m)),
        name="FilterBankSplitJoin")
    return Pipeline([
        fb_data_source(),
        Pipeline([bank, adder(m)], name="FilterBankPipeline"),
        printer(),
    ], name="FilterBank")


# ---------------------------------------------------------------------------
# Vocoder
# ---------------------------------------------------------------------------

_SOURCE_VALUES = [
    -0.70867825, 0.9750938, -0.009129746, 0.28532153, -0.42127264,
    -0.95795095, 0.68976873, 0.99901736, -0.8581795, 0.9863592, 0.909825,
]


def voc_data_source() -> Filter:
    f = FilterBuilder("DataSource", peek=0, pop=0, push=1)
    data = f.const_array("x", _SOURCE_VALUES)
    idx = f.state("index", 0)
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % len(_SOURCE_VALUES))
    return f.build()


def center_clip(lo: float = -0.75, hi: float = 0.75) -> Filter:
    f = FilterBuilder("CenterClip", peek=1, pop=1, push=1)
    with f.work():
        t = f.local("t", f.pop_expr())
        below = f.if_(t < lo)
        with below:
            f.push(lo)
        with below.otherwise():
            above = f.if_(t > hi)
            with above:
                f.push(hi)
            with above.otherwise():
                f.push(t)
    return f.build()


def corr_peak(winsize: int, decimation: int,
              threshold: float = 0.07) -> Filter:
    f = FilterBuilder("CorrPeak", peek=winsize, pop=decimation, push=1)
    thresh = f.const("THRESHOLD", threshold)
    w = f.const("winsize", winsize)
    with f.work():
        maxpeak = f.local("maxpeak", 0.0)
        with f.loop("i", 0, winsize) as i:
            s = f.local("sum", 0.0)
            with f.loop("j", i, winsize) as j:
                f.assign(s, s + f.peek(i) * f.peek(j))
            acorr = f.local("ac", s / w)
            bigger = f.if_(acorr > maxpeak)
            with bigger:
                f.assign(maxpeak, acorr)
        over = f.if_(maxpeak > thresh)
        with over:
            f.push(maxpeak)
        with over.otherwise():
            f.push(0.0)
        with f.loop("i", 0, decimation):
            f.pop()
    return f.build()


def pitch_detector(window: int, decimation: int) -> Pipeline:
    return Pipeline([center_clip(), corr_peak(window, decimation)],
                    name="PitchDetector")


def filter_decimate(i: int, decimation: int, taps: int,
                    rate: float = 8000.0) -> Pipeline:
    ws = 2 * math.pi * 400.0 * i / rate
    wp = 2 * math.pi * 400.0 * (i + 1) / rate
    return Pipeline([
        band_pass_filter(2.0, max(ws, 1e-3), wp, taps),
        compressor(decimation),
    ], name=f"FilterDecimate{i}")


def vocoder_filter_bank(n: int, decimation: int, taps: int) -> SplitJoin:
    return SplitJoin(
        Duplicate(),
        [filter_decimate(i, decimation, taps) for i in range(n)],
        RoundRobin(tuple([1] * n)),
        name="VocoderFilterBank")


def vocoder_build(window: int = 100, decimation: int = 50,
                  n_filters: int = 4, taps: int = 64) -> Pipeline:
    main = SplitJoin(
        Duplicate(),
        [pitch_detector(window, decimation),
         vocoder_filter_bank(n_filters, decimation, taps)],
        RoundRobin((1, n_filters)),
        name="MainSplitjoin")
    return Pipeline([
        voc_data_source(),
        low_pass_filter(1.0, 2 * math.pi * 5000 / 8000, taps),
        main,
        printer(),
    ], name="ChannelVocoder")


def vocoder_echo_build(window: int = 100, decimation: int = 50,
                       n_filters: int = 4, taps: int = 64,
                       echo_delay: int = 256,
                       echo_gain: float = 0.35) -> Pipeline:
    main = SplitJoin(
        Duplicate(),
        [pitch_detector(window, decimation),
         vocoder_filter_bank(n_filters, decimation, taps)],
        RoundRobin((1, n_filters)),
        name="MainSplitjoin")
    return Pipeline([
        voc_data_source(),
        low_pass_filter(1.0, 2 * math.pi * 5000 / 8000, taps),
        echo_loop(echo_delay, echo_gain, name="VocoderEchoLoop"),
        main,
        printer(),
    ], name="ChannelVocoderEcho")


# ---------------------------------------------------------------------------
# Oversampler
# ---------------------------------------------------------------------------


def oversampler_stages(stages: int = 4, taps: int = 64) -> Pipeline:
    parts = []
    for i in range(stages):
        parts.append(expander(2, name=f"Expander2_{i}"))
        parts.append(low_pass_filter(2.0, math.pi / 2, taps,
                                     name=f"LowPass_{i}"))
    return Pipeline(parts, name="OverSampler")


def ov_build(stages: int = 4, taps: int = 64) -> Pipeline:
    return Pipeline([
        multi_sine_source(),
        oversampler_stages(stages, taps),
        printer(name="DataSink"),
    ], name="Oversampler")


# ---------------------------------------------------------------------------
# DToA
# ---------------------------------------------------------------------------


def adder_filter() -> Filter:
    f = FilterBuilder("AdderFilter", peek=2, pop=2, push=1)
    with f.work():
        f.push(f.pop_expr() + f.pop_expr())
    return f.build()


def quantizer_and_error() -> Filter:
    f = FilterBuilder("QuantizerAndError", peek=1, pop=1, push=2)
    with f.work():
        v = f.local("inputValue", f.pop_expr())
        out = f.local("outputValue", 0.0)
        neg = f.if_(v < 0.0)
        with neg:
            f.assign(out, -1.0)
        with neg.otherwise():
            f.assign(out, 1.0)
        f.push(out)
        f.push(out - v)
    return f.build()


def noise_shaper() -> FeedbackLoop:
    body = Pipeline([adder_filter(), quantizer_and_error()],
                    name="shaper_body")
    return FeedbackLoop(
        body=body,
        loop=delay(),
        joiner=RoundRobin((1, 1)),
        splitter=RoundRobin((1, 1)),
        enqueued=[0.0],
        name="NoiseShaper")


def dtoa_build(stages: int = 4, taps: int = 64,
               out_taps: int = 256) -> Pipeline:
    return Pipeline([
        multi_sine_source(),
        oversampler_stages(stages, taps),
        noise_shaper(),
        low_pass_filter(1.0, math.pi / 100, out_taps),
        printer(name="DataSink"),
    ], name="OneBitDToA")


# ---------------------------------------------------------------------------
# Echo
# ---------------------------------------------------------------------------

ECHO_DELAY = 1024
ECHO_GAIN = 0.6


def echo_add(name: str = "EchoAdd") -> Filter:
    f = FilterBuilder(name, peek=2, pop=2, push=2)
    with f.work():
        x = f.local("x", f.pop_expr())
        fb = f.local("fb", f.pop_expr())
        y = f.local("y", x + fb)
        f.push(y)
        f.push(y)
    return f.build()


def echo_damp(gain: float, name: str = "EchoDamp") -> Filter:
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    g = f.const("g", gain)
    with f.work():
        f.push(g * f.pop_expr())
    return f.build()


def echo_loop(delay_: int = ECHO_DELAY, gain: float = ECHO_GAIN,
              name: str = "EchoLoop") -> FeedbackLoop:
    return FeedbackLoop(
        body=echo_add(),
        loop=echo_damp(gain),
        joiner=RoundRobin((1, 1)),
        splitter=RoundRobin((1, 1)),
        enqueued=[0.0] * delay_,
        name=name)


def echo_build(delay_: int = ECHO_DELAY, gain: float = ECHO_GAIN,
               taps: int = 64) -> Pipeline:
    return Pipeline([
        ramp_source(),
        low_pass_filter(1.0, math.pi / 3, taps),
        echo_loop(delay_, gain),
        printer(),
    ], name="EchoProgram")


def echo_build_kw(delay: int = ECHO_DELAY, gain: float = ECHO_GAIN,
                  taps: int = 64) -> Pipeline:
    return echo_build(delay, gain, taps)


# ---------------------------------------------------------------------------
# IIR
# ---------------------------------------------------------------------------

DEFAULT_SECTIONS = (
    (0.2929, 0.5858, 0.2929, 0.0000, -0.1716),
    (0.1867, 0.3734, 0.1867, 0.4629, -0.2097),
    (0.3913, -0.7826, 0.3913, 0.3695, -0.1958),
)

DC_BLOCK_R = 0.995


def biquad(b0: float, b1: float, b2: float, a1: float, a2: float,
           name: str = "Biquad") -> Filter:
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    cb0 = f.const("b0", b0)
    cb1 = f.const("b1", b1)
    cb2 = f.const("b2", b2)
    ca1 = f.const("a1", a1)
    ca2 = f.const("a2", a2)
    s1 = f.state("s1", 0.0)
    s2 = f.state("s2", 0.0)
    with f.work():
        x = f.local("x", f.pop_expr())
        y = f.local("y", cb0 * x + s1)
        f.assign(s1, cb1 * x + ca1 * y + s2)
        f.assign(s2, cb2 * x + ca2 * y)
        f.push(y)
    return f.build()


def dc_blocker(r: float = DC_BLOCK_R, name: str = "DCBlocker") -> Filter:
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    cr = f.const("r", r)
    s = f.state("s", 0.0)
    with f.work():
        x = f.local("x", f.pop_expr())
        y = f.local("y", x + s)
        f.assign(s, cr * y - x)
        f.push(y)
    return f.build()


def iir_cascade(sections=DEFAULT_SECTIONS,
                name: str = "BiquadCascade") -> Pipeline:
    stages: list[Filter] = [dc_blocker()]
    stages += [biquad(*coeffs, name=f"Biquad{i}")
               for i, coeffs in enumerate(sections)]
    return Pipeline(stages, name=name)


def iir_build(sections=DEFAULT_SECTIONS) -> Pipeline:
    return Pipeline([
        ramp_source(),
        iir_cascade(sections),
        printer(),
    ], name="IIRProgram")


#: name -> legacy build() for the differential tests; signatures match
#: the DSL-backed ``repro.apps`` registry.
LEGACY_BENCHMARKS = {
    "FIR": fir_build,
    "RateConvert": ratec_build,
    "TargetDetect": td_build,
    "FMRadio": fmradio_build,
    "Radar": radar_build,
    "FilterBank": fb_build,
    "Vocoder": vocoder_build,
    "Oversampler": ov_build,
    "DToA": dtoa_build,
    "Echo": echo_build_kw,
    "VocoderEcho": vocoder_echo_build,
    "IIR": iir_build,
}
