"""The grammar-driven differential fuzzer, exercised as a test.

A batch of generated programs must agree across all three backends
(interp vs compiled bitwise; plan to 1e-9) — the same contract the CI
smoke run enforces at larger count via ``python -m repro.dsl.fuzz``.
"""

import pytest

from repro.dsl.fuzz import (check_program, generate, main, run_fuzz)

#: Fixed so failures reproduce; distinct from the CI smoke's seed 0.
BATCH_SEED = 20260807
BATCH_COUNT = 30


def test_batch_no_mismatches():
    mismatches = run_fuzz(BATCH_COUNT, seed=BATCH_SEED, n_outputs=48,
                          stop_on_first=False)
    assert mismatches == [], "\n\n".join(m.render() for m in mismatches)


def test_generation_is_deterministic():
    a, b = generate(12345), generate(12345)
    assert a.source == b.source
    assert a.census == b.census
    assert generate(12345).source != generate(54321).source


def test_generated_programs_cover_all_constructs():
    """Across a modest batch the generator exercises every composite —
    otherwise the differential is vacuously narrow."""
    census = {}
    for i in range(BATCH_COUNT):
        for kind, n in generate(BATCH_SEED * 1_000_003 + i).census.items():
            census[kind] = census.get(kind, 0) + n
    for kind in ("filter", "pipeline", "splitjoin", "feedbackloop"):
        assert census.get(kind, 0) > 0, f"no {kind} generated"


def test_rate_signature_is_consistent():
    """The generator's claimed (pop, push) must divide evenly into any
    steady state — spot-check that requesting a multiple of ``push``
    outputs succeeds for rate-changing programs."""
    for seed in range(40):
        prog = generate(seed)
        if prog.pop != prog.push:
            assert check_program(prog, n_outputs=3 * prog.push) is None
            break
    else:
        pytest.skip("no rate-changing program in the first 40 seeds")


def test_cli_smoke(capsys):
    assert main(["--count", "3", "--seed", "7", "--outputs", "32"]) == 0
    out = capsys.readouterr().out
    assert "0 mismatches" in out
