"""IR interpreter/codegen agreement and stream executor tests."""

import math

import numpy as np
import pytest

from repro.errors import InterpError, SchedulingError
from repro.graph import (Duplicate, FeedbackLoop, Pipeline, RoundRobin,
                         SplitJoin, steady_state)
from repro.ir import FilterBuilder, call, work_to_str
from repro.profiling import Profiler
from repro.runtime import (Collector, FunctionSource, Identity, ListSource,
                           run_graph, run_stream)


def make_fir(coeffs, name="FIR"):
    n = len(coeffs)
    f = FilterBuilder(name, peek=n, pop=1, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    return f.build()


def make_compressor(m):
    f = FilterBuilder(f"Compressor{m}", peek=m, pop=m, push=1)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, m - 1):
            f.pop()
    return f.build()


def make_counter_source():
    f = FilterBuilder("CounterSource", peek=0, pop=0, push=1)
    x = f.state("x", 0.0)
    with f.work():
        f.push(x)
        f.assign(x, x + 1.0)
    return f.build()


# ---------------------------------------------------------------------------
# interpreter vs compiled backend
# ---------------------------------------------------------------------------


class TestBackendsAgree:
    def _run_both(self, filt, inputs, n_out):
        p1, p2 = Profiler(), Profiler()
        out1 = run_stream(filt, inputs, n_out, profiler=p1, backend="interp")
        out2 = run_stream(filt, inputs, n_out, profiler=p2, backend="compiled")
        return out1, out2, p1, p2

    def test_fir_outputs_and_flops_match(self):
        filt = make_fir([1.0, -0.5, 0.25])
        inputs = np.arange(20.0).tolist()
        out1, out2, p1, p2 = self._run_both(filt, inputs, 10)
        np.testing.assert_allclose(out1, out2)
        assert p1.counts.flops == p2.counts.flops
        assert p1.counts.mults == p2.counts.mults
        # 3 mults + 3 adds per output
        assert p1.counts.fmul == 30
        assert p1.counts.fadd == 30

    def test_branching_filter_matches(self):
        f = FilterBuilder("AbsLike", peek=1, pop=1, push=1)
        with f.work():
            t = f.local("t", f.pop_expr())
            cond = f.if_(t < 0.0)
            with cond:
                f.push(-t)
            with cond.otherwise():
                f.push(t)
        filt = f.build()
        inputs = [3.0, -2.0, 0.0, -7.5, 1.5, -1.0]
        out1, out2, p1, p2 = self._run_both(filt, inputs, 6)
        np.testing.assert_allclose(out1, [3.0, 2.0, 0.0, 7.5, 1.5, 1.0])
        np.testing.assert_allclose(out1, out2)
        assert p1.counts.flops == p2.counts.flops

    def test_stateful_filter_matches(self):
        f = FilterBuilder("RunningSum", peek=1, pop=1, push=1)
        acc = f.state("acc", 0.0)
        with f.work():
            f.assign(acc, acc + f.pop_expr())
            f.push(acc)
        filt = f.build()
        inputs = [1.0, 2.0, 3.0, 4.0]
        out1, out2, _, _ = self._run_both(filt, inputs, 4)
        np.testing.assert_allclose(out1, [1.0, 3.0, 6.0, 10.0])
        np.testing.assert_allclose(out1, out2)

    def test_intrinsics_match(self):
        f = FilterBuilder("Weird", peek=2, pop=1, push=1)
        with f.work():
            f.push(call("sqrt", call("abs", f.peek(0) * f.peek(1)) + 1.0))
            f.pop()
        inputs = [0.5, -1.5, 2.0, 3.0, -0.25]
        out1, out2, p1, p2 = self._run_both(f.build(), inputs, 4)
        np.testing.assert_allclose(out1, out2)
        assert p1.counts.fcall == p2.counts.fcall == 4
        assert p1.counts.fabs == p2.counts.fabs == 4

    def test_integer_arithmetic_matches(self):
        """C-style truncating division/modulo on ints in both backends."""
        f = FilterBuilder("IntOps", peek=1, pop=1, push=1)
        with f.work():
            k = f.local("k", 7, ty="int")
            f.assign(k, (k * 3) / 2 % 4)  # 10 % 4 = 2
            f.push(f.pop_expr() + k)
        out1, out2, _, _ = self._run_both(f.build(), [1.0, 2.0], 2)
        np.testing.assert_allclose(out1, [3.0, 4.0])
        np.testing.assert_allclose(out1, out2)


# ---------------------------------------------------------------------------
# executor semantics
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_pipeline_of_filters(self):
        filt = make_fir([2.0])
        prog = Pipeline([ListSource([1, 2, 3]), filt, Collector()])
        assert run_graph(prog, 3) == [2.0, 4.0, 6.0]

    def test_ir_source_feeds_graph(self):
        prog = Pipeline([make_counter_source(), Collector()])
        assert run_graph(prog, 4) == [0.0, 1.0, 2.0, 3.0]

    def test_function_source(self):
        prog = Pipeline([FunctionSource(lambda n: n * n), Collector()])
        assert run_graph(prog, 4) == [0.0, 1.0, 4.0, 9.0]

    def test_compressor_decimates(self):
        out = run_stream(make_compressor(3), list(range(12)), 4)
        assert out == [0.0, 3.0, 6.0, 9.0]

    def test_duplicate_splitjoin_interleaves(self):
        sj = SplitJoin(Duplicate(),
                       [Identity("a"), Identity("b")],
                       RoundRobin((1, 1)))
        out = run_stream(sj, [5.0, 6.0], 4)
        assert out == [5.0, 5.0, 6.0, 6.0]

    def test_roundrobin_splitjoin_reorders(self):
        sj = SplitJoin(RoundRobin((1, 1)),
                       [Identity("a"), Identity("b")],
                       RoundRobin((1, 1)))
        out = run_stream(sj, [1.0, 2.0, 3.0, 4.0], 4)
        assert out == [1.0, 2.0, 3.0, 4.0]

    def test_feedbackloop_integrator(self):
        """y[n] = x[n] + y[n-1] via a feedback loop around an adder."""
        f = FilterBuilder("Add2", peek=2, pop=2, push=1)
        with f.work():
            f.push(f.pop_expr() + f.pop_expr())
        adder = f.build()
        loop = FeedbackLoop(
            body=adder, loop=Identity("fb"),
            joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
            enqueued=[0.0])
        # splitter rr(1,1) alternates: output, feedback -> each body firing
        # pushes 1; duplicate semantics need push 2.  Use a Dup-style body.
        g = FilterBuilder("AddDup", peek=2, pop=2, push=2)
        with g.work():
            t = g.local("t", g.pop_expr() + g.pop_expr())
            g.push(t)
            g.push(t)
        loop = FeedbackLoop(
            body=g.build(), loop=Identity("fb"),
            joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
            enqueued=[0.0])
        out = run_stream(loop, [1.0, 2.0, 3.0, 4.0], 4)
        assert out == [1.0, 3.0, 6.0, 10.0]

    def test_peeking_filter_waits_for_data(self):
        filt = make_fir([1.0, 1.0, 1.0, 1.0])
        out = run_stream(filt, list(range(10)), 3)
        assert out == [6.0, 10.0, 14.0]

    def test_prework_fires_once(self):
        f = FilterBuilder("Delay1", peek=1, pop=1, push=1)
        with f.prework(peek=0, pop=0, push=1):
            f.push(0.0)
        with f.work():
            f.push(f.pop_expr())
        out = run_stream(f.build(), [1.0, 2.0, 3.0], 4)
        assert out == [0.0, 1.0, 2.0, 3.0]

    def test_deadlock_detection(self):
        filt = make_fir([1.0, 1.0])
        with pytest.raises(InterpError):
            run_stream(filt, [1.0], 5)  # source exhausts before 5 outputs


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_pipeline_multiplicities(self):
        up = FilterBuilder("Up", peek=1, pop=1, push=2)
        with up.work():
            v = up.local("v", up.pop_expr())
            up.push(v)
            up.push(v)
        down = make_compressor(3)
        pipe = Pipeline([up.build(), down])
        ss = steady_state(pipe)
        assert ss.multiplicity(pipe.children[0]) == 3
        assert ss.multiplicity(pipe.children[1]) == 2
        assert ss.pop == 3 and ss.push == 2

    def test_splitjoin_rates(self):
        sj = SplitJoin(Duplicate(),
                       [Identity("a"), Identity("b")],
                       RoundRobin((1, 1)))
        ss = steady_state(sj)
        assert ss.pop == 1 and ss.push == 2

    def test_inconsistent_duplicate_splitjoin_rejected(self):
        sj = SplitJoin(Duplicate(),
                       [Identity("a"), make_compressor(2)],
                       RoundRobin((1, 1)))
        with pytest.raises(SchedulingError):
            steady_state(sj)

    def test_roundrobin_weights_scale_consumption(self):
        sj = SplitJoin(RoundRobin((2, 1)),
                       [Identity("a"), Identity("b")],
                       RoundRobin((2, 1)))
        ss = steady_state(sj)
        assert ss.pop == 3 and ss.push == 3

    def test_feedbackloop_schedulable(self):
        g = FilterBuilder("AddDup", peek=2, pop=2, push=2)
        with g.work():
            t = g.local("t", g.pop_expr() + g.pop_expr())
            g.push(t)
            g.push(t)
        loop = FeedbackLoop(
            body=g.build(), loop=Identity("fb"),
            joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
            enqueued=[0.0])
        ss = steady_state(loop)
        assert ss.pop == 1 and ss.push == 1


# ---------------------------------------------------------------------------
# printer smoke test
# ---------------------------------------------------------------------------


def test_printer_roundtrip_smoke():
    filt = make_fir([1.0, 2.0])
    text = work_to_str(filt.work)
    assert "peek 2 pop 1 push 1" in text
    assert "push(sum);" in text
    assert "for (int i = 0; i < 2; i++)" in text
