"""Graphviz export tests (Appendix-B style stream graphs)."""

from repro.apps import dtoa, fir, fmradio
from repro.graph.dot import to_dot


def test_fir_graph_marks_linear_filter():
    dot = to_dot(fir.build(taps=8), title="FIR")
    assert dot.startswith('digraph "FIR"')
    assert dot.rstrip().endswith("}")
    assert "LowPassFilter" in dot
    assert "lightblue" in dot  # the FIR filter is linear
    assert "FloatSource" in dot


def test_splitjoin_rendering():
    dot = to_dot(fmradio.build(bands=4, taps=8))
    assert "duplicate" in dot
    assert "join roundrobin" in dot
    assert dot.count("subgraph") >= 3


def test_feedbackloop_rendering():
    dot = to_dot(dtoa.build(stages=2, taps=8, out_taps=8))
    assert "enqueue 1" in dot
    assert "style=dashed" in dot  # the feedback edge


def test_linear_containers_highlighted():
    from repro.apps import oversampler

    dot = to_dot(oversampler.build(stages=2, taps=8))
    # the OverSampler pipeline is entirely linear -> pink cluster
    assert "pink" in dot


def test_dot_is_balanced():
    dot = to_dot(fmradio.build(bands=4, taps=8))
    assert dot.count("{") == dot.count("}")
