"""Compile-once streaming sessions: the ``repro.compile`` / StreamSession
API.

The acceptance bar: chunked (incremental) execution is *observationally
invisible* — for every app and every backend, pushing input in random
chunks or pulling outputs in random increments produces bitwise-identical
values and identical FLOP counts to one batch run, and repeated advances
on a plan-backend session never replan.
"""

import math
import warnings
import zlib

import numpy as np
import pytest

import repro
from repro.apps import BENCHMARKS, FEEDBACK_APPS, source_values, split_app
from repro.apps.common import low_pass_filter
from repro.errors import InterpError, StreamGraphError
from repro.exec import PlanExecutor, clear_plan_cache, plan_cache_stats
from repro.graph.streams import Filter, walk
from repro.profiling import CATEGORIES, Profiler
from repro.runtime import count_ops, run_graph, run_stream
from repro.runtime.builtins import ArrayCollector, ChunkSource
from repro.runtime.channels import FloatVec

BACKENDS = ("interp", "compiled", "plan")

SMALL_PARAMS = {
    "FIR": dict(taps=32),
    "RateConvert": dict(taps=48),
    "TargetDetect": dict(n=24),
    "FMRadio": dict(bands=4, taps=16),
    "Radar": dict(channels=4, beams=2, fir1_taps=4, fir2_taps=2, mf_taps=4),
    "FilterBank": dict(m=3, taps=12),
    "Vocoder": dict(window=16, decimation=8, n_filters=3, taps=12),
    "Oversampler": dict(stages=3, taps=16),
    "DToA": dict(stages=2, taps=12, out_taps=24),
    "Echo": dict(delay=24, gain=0.5, taps=16),
    "VocoderEcho": dict(window=16, decimation=8, n_filters=3, taps=12,
                        echo_delay=16),
    "IIR": dict(),
}
N_OUT = {name: 64 for name in SMALL_PARAMS}
N_OUT["Radar"] = 24


def small(name):
    return BENCHMARKS[name](**SMALL_PARAMS[name])


def assert_counts_equal(p1: Profiler, p2: Profiler, msg=""):
    for cat in CATEGORIES:
        assert getattr(p1.counts, cat) == getattr(p2.counts, cat), \
            f"{msg}: {cat} differs"


def random_chunks(rng, values, lo=1, hi=97):
    pos = 0
    while pos < len(values):
        k = min(int(rng.integers(lo, hi)), len(values) - pos)
        yield values[pos:pos + k]
        pos += k


def seed_for(name: str) -> int:
    return zlib.crc32(name.encode())


def assert_chunked_values(got, expected, backend, msg):
    """Chunking is bitwise-invisible on the scalar backends (identical
    firing order); the plan backend's batched kernels (BLAS shapes,
    lifted stateful blocks) legally reassociate across different batch
    splits, so values there match to the repo's 1e-9 contract."""
    if backend == "plan":
        np.testing.assert_allclose(got, expected, atol=1e-9, err_msg=msg)
    else:
        np.testing.assert_array_equal(got, expected, err_msg=msg)


# ---------------------------------------------------------------------------
# Acceptance: chunked push == batch, every app x every backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_push_chunked_matches_batch(name, backend):
    """``session.push`` over random-sized chunks is bitwise- and
    FLOP-identical to a single batch ``run_stream`` call of the app's
    float->float body on the same inputs."""
    n_out = N_OUT[name]
    source, body = split_app(small(name))
    # generously sized harness input; the one-shot run tells us how
    # much of it the graph actually consumes
    from repro.graph.scheduler import steady_state
    ss = steady_state(body)
    n_in = -(-n_out * ss.pop // ss.push) * 2 + 800
    inputs = source_values(source, n_in)

    clear_plan_cache()
    p_legacy = Profiler()
    legacy = run_stream(body, inputs, n_out, p_legacy, backend=backend)

    # one-shot session: feed everything, pull the same target
    clear_plan_cache()
    source, body = split_app(small(name))
    batch = repro.compile(body, backend=backend)
    batch.feed(inputs)
    out_batch = batch.run(n_out)
    consumed = batch.consumed
    assert consumed <= n_in

    # chunked session: push exactly the consumed prefix in random chunks
    clear_plan_cache()
    source, body = split_app(small(name))
    chunked = repro.compile(body, backend=backend)
    rng = np.random.default_rng(seed_for(name))
    outs = [chunked.push(c) for c in random_chunks(rng, inputs[:consumed])]
    out_chunked = np.concatenate([o for o in outs if len(o)])

    np.testing.assert_array_equal(out_batch, np.asarray(legacy),
                                  err_msg=f"{name}/{backend} batch")
    assert len(out_chunked) >= n_out
    assert_chunked_values(out_chunked[:n_out], out_batch, backend,
                          f"{name}/{backend} chunked")
    assert_counts_equal(p_legacy, batch.profile, f"{name}/{backend} batch")
    assert_counts_equal(p_legacy, chunked.profile,
                        f"{name}/{backend} chunked")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_run_increments_match_one_shot(name, backend):
    """Resumable ``session.run``: pulling the app's outputs in random
    increments equals one ``run_graph`` call — values and FLOPs."""
    n_out = N_OUT[name]
    clear_plan_cache()
    p_one = Profiler()
    one = run_graph(small(name), n_out, p_one, backend=backend)

    clear_plan_cache()
    session = repro.compile(small(name), backend=backend)
    rng = np.random.default_rng(seed_for(name) + 1)
    parts = []
    got = 0
    while got < n_out:
        k = min(int(rng.integers(1, 24)), n_out - got)
        parts.append(session.run(k))
        got += k
    incremental = np.concatenate(parts)

    assert_chunked_values(incremental, np.asarray(one), backend,
                          f"{name}/{backend}")
    assert session.outputs_produced == n_out
    assert_counts_equal(p_one, session.profile, f"{name}/{backend}")


# ---------------------------------------------------------------------------
# Zero replanning, cache pinning, reset
# ---------------------------------------------------------------------------


def test_repeated_run_performs_zero_replanning():
    clear_plan_cache()
    session = repro.compile(small("FIR"), backend="plan")
    assert isinstance(session._executor, PlanExecutor)
    after_compile = plan_cache_stats()
    for _ in range(5):
        session.run(32)
    assert plan_cache_stats() == after_compile  # no lookups at all
    assert session.cache_entry is not None


def test_push_session_repeated_push_zero_replanning():
    clear_plan_cache()
    session = repro.compile(low_pass_filter(1.0, math.pi / 3, 16),
                            backend="plan")
    after_compile = plan_cache_stats()
    for _ in range(5):
        session.push(np.arange(64.0))
    assert plan_cache_stats() == after_compile


def test_field_mutation_between_runs_pins_the_plan():
    """Mutating a coefficient array in place mid-session does not
    invalidate or replan: the session continues the stream with the
    coefficients it was compiled with, while a fresh compile of the
    mutated graph misses the cache and sees the new values."""
    clear_plan_cache()
    program = small("FIR")
    expected = run_graph(BENCHMARKS["FIR"](**SMALL_PARAMS["FIR"]), 96,
                         backend="compiled")
    clear_plan_cache()
    session = repro.compile(program, backend="plan")
    first = session.run(48)
    stats_before = plan_cache_stats()

    filt = next(s for s in walk(program)
                if isinstance(s, Filter) and "h" in s.fields)
    filt.fields["h"][0] += 123.0

    rest = session.run(48)  # continues on the *compiled* coefficients
    # cross-backend (plan vs compiled) comparison: 1e-9 contract, not
    # bitwise — the plan backend's sliding-filter kernel sums in a
    # different order than the compiled backend's matmul
    np.testing.assert_allclose(np.concatenate([first, rest]),
                               np.asarray(expected), atol=1e-9)
    assert plan_cache_stats() == stats_before  # pinned, not replanned

    # a fresh compile of the mutated graph sees the new coefficients
    fresh = repro.compile(program, backend="plan")
    assert plan_cache_stats()["misses"] == stats_before["misses"] + 1
    changed = fresh.run(96)
    assert not np.array_equal(changed, np.asarray(expected))
    filt.fields["h"][0] -= 123.0


def test_reset_rewinds_without_recompiling():
    clear_plan_cache()
    session = repro.compile(small("IIR"), backend="plan")
    first = session.run(96)
    stats = plan_cache_stats()
    session.reset()
    assert plan_cache_stats() == stats  # reuses the pinned entry
    again = session.run(96)
    np.testing.assert_array_equal(again, first)
    assert session.outputs_produced == 96

    flops = session.profile.counts.flops
    session.reset(clear_profile=True)
    assert session.profile.counts.flops == 0
    assert flops > 0


def test_trace_replay_session_resumes():
    """A session whose first advance replays a cached schedule trace
    continues the stream correctly afterwards."""
    clear_plan_cache()
    program = small("FIR")
    run_graph(program, 50, backend="plan")  # records the (65536, 50) trace
    session = repro.compile(program, backend="plan")
    resumed = np.concatenate([session.run(50), session.run(30)])
    expected = run_graph(BENCHMARKS["FIR"](**SMALL_PARAMS["FIR"]), 80,
                         backend="compiled")
    # cross-backend comparison: 1e-9 contract (see field-mutation test)
    np.testing.assert_allclose(resumed, np.asarray(expected), atol=1e-9)


# ---------------------------------------------------------------------------
# Profiler threading: probes count once per compile, never per run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("optimize", ("linear", "auto"))
@pytest.mark.parametrize("name", ("FIR", "IIR", "Radar"))
def test_cumulative_profiler_has_no_probe_double_count(name, optimize):
    """Two runs on the same cached entry with one cumulative profiler
    count exactly twice a single run: extraction/rewrite probes happen
    once per compile and never leak into the caller's profiler."""
    n = N_OUT[name]
    clear_plan_cache()
    p1 = Profiler()
    run_graph(small(name), n, p1, backend="plan", optimize=optimize)
    clear_plan_cache()
    p2 = Profiler()
    program = small(name)
    run_graph(program, n, p2, backend="plan", optimize=optimize)
    run_graph(program, n, p2, backend="plan", optimize=optimize)
    for cat in CATEGORIES:
        assert getattr(p2.counts, cat) == 2 * getattr(p1.counts, cat), \
            f"{name}/{optimize}: {cat}"


def test_session_cumulative_profile_is_linear_in_outputs():
    """A session's cumulative profile after two equal advances is twice
    one advance — compile-time probing is not in the counts."""
    clear_plan_cache()
    s1 = repro.compile(small("IIR"), backend="plan", optimize="auto")
    s1.run(64)
    single = s1.profile.counts.flops
    s1.run(64)
    assert s1.profile.counts.flops == 2 * single


# ---------------------------------------------------------------------------
# Legacy wrappers: as_array, deprecation shim
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_graph_as_array(backend):
    legacy = run_graph(small("FIR"), 48, backend=backend)
    arr = run_graph(small("FIR"), 48, backend=backend, as_array=True)
    assert isinstance(arr, np.ndarray) and arr.dtype == np.float64
    np.testing.assert_array_equal(arr, np.asarray(legacy))


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_stream_as_array(backend):
    stream = low_pass_filter(1.0, math.pi / 3, 16)
    inputs = np.sin(np.arange(128.0)).tolist()
    p_list, p_arr = Profiler(), Profiler()
    legacy = run_stream(stream, inputs, 64, p_list, backend=backend)
    arr = run_stream(low_pass_filter(1.0, math.pi / 3, 16), inputs, 64,
                     p_arr, backend=backend, as_array=True)
    assert isinstance(arr, np.ndarray)
    np.testing.assert_array_equal(arr, np.asarray(legacy))
    assert_counts_equal(p_list, p_arr, backend)


def test_positional_backend_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="repro.compile"):
        run_graph(small("FIR"), 8, None, "compiled")
    with pytest.warns(DeprecationWarning, match="positionally"):
        run_graph(small("FIR"), 8, None, "plan", "linear")
    with pytest.warns(DeprecationWarning):
        run_stream(low_pass_filter(1.0, 1.0, 4), [1.0] * 16, 4, None,
                   "compiled")
    with pytest.raises(TypeError, match="too many positional"), \
            pytest.warns(DeprecationWarning):
        run_graph(small("FIR"), 8, None, "compiled", "none", "extra")


def test_keyword_form_emits_no_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run_graph(small("FIR"), 8, backend="compiled")
        run_stream(low_pass_filter(1.0, 1.0, 4), [1.0] * 16, 4,
                   backend="compiled")
        count_ops(small("FIR"), 8, backend="plan", optimize="linear")


# ---------------------------------------------------------------------------
# Session surface: modes, errors, report, ndarray sinks
# ---------------------------------------------------------------------------


def test_push_on_program_session_raises():
    session = repro.compile(small("FIR"), backend="plan")
    with pytest.raises(StreamGraphError, match="own\\s+sources"):
        session.push([1.0, 2.0])
    with pytest.raises(StreamGraphError):
        session.consumed


def test_run_on_underfed_push_session_deadlocks():
    session = repro.compile(low_pass_filter(1.0, math.pi / 3, 16),
                            backend="compiled")
    session.feed(np.arange(8.0))  # filter peeks 16: nothing can fire
    with pytest.raises(InterpError, match="deadlock"):
        session.run(4)


def test_report_names_kernels_without_replanning():
    clear_plan_cache()
    session = repro.compile(small("FIR"), backend="plan", optimize="linear")
    stats = plan_cache_stats()
    report = session.report()
    assert plan_cache_stats() == stats
    assert report.bailout is None
    assert any(s.step_kind == "matmul" for s in report.steps)
    assert "plan report" in str(report)


def test_scalar_session_report_is_advisory():
    session = repro.compile(small("FIR"), backend="compiled")
    report = session.report()
    assert report.bailout is None and report.steps


def test_push_harness_is_ndarray_native():
    session = repro.compile(low_pass_filter(1.0, math.pi / 3, 16),
                            backend="plan")
    assert isinstance(session._source, ChunkSource)
    flat = session._executor.flat
    sink = next(n for n in flat.nodes
                if isinstance(n.stream, ArrayCollector))
    assert isinstance(sink.runner.collected, FloatVec)
    out = session.push(np.arange(64.0))
    assert isinstance(out, np.ndarray) and out.dtype == np.float64


def test_floatvec_collection_surface():
    vec = FloatVec(capacity=2)
    vec.append(1.0)
    vec.extend([2.0, 3.0])
    vec.extend_array(np.asarray([4.0, 5.0]))
    assert len(vec) == 5
    assert vec[0] == 1.0 and vec[-1] == 5.0
    np.testing.assert_array_equal(vec[1:4], [2.0, 3.0, 4.0])
    np.testing.assert_array_equal(vec.array(), [1, 2, 3, 4, 5])
    with pytest.raises(IndexError):
        vec[5]


def test_unknown_backend_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown backend"):
        repro.compile(small("FIR"), backend="vectorized")


@pytest.mark.parametrize("backend", BACKENDS)
def test_pass_limit_is_per_call_not_per_session(backend):
    """max_passes bounds one advance, not the session lifetime: many
    small advances must never trip it (the counter used to be
    cumulative, killing long-lived sessions mid-stream)."""
    session = repro.compile(small("FIR"), backend=backend)
    for _ in range(200):
        session._executor.advance(1, max_passes=100)
    assert session._executor._passes > 100  # lifetime counter kept


def test_push_graph_with_unbounded_source_rejected_at_compile():
    """A float->float graph hiding an unbounded source can never
    quiesce under a greedy push drain: compile must refuse it instead
    of push() hanging."""
    from repro.graph.streams import RoundRobin, SplitJoin
    from repro.runtime.builtins import FunctionSource, Identity

    body = SplitJoin(RoundRobin((1, 0)),
                     [Identity(), FunctionSource(lambda n: 1.0)],
                     RoundRobin((1, 1)), name="carrier")
    for backend in BACKENDS:
        with pytest.raises(StreamGraphError, match="unbounded source"):
            repro.compile(body, backend=backend)


def make_output_channel_program():
    """A complete program paced by the graph output channel (no
    Collector): the source feeds an expander, so one advance can
    overshoot the requested target."""
    from repro.apps.common import expander
    from repro.graph.streams import Pipeline
    from repro.runtime.builtins import FunctionSource

    return Pipeline([FunctionSource(lambda n: float(n), "src"),
                     expander(4), expander(4)], name="overshoot")


@pytest.mark.parametrize("backend", BACKENDS)
def test_overshooting_advances_keep_firing_parity(backend):
    """advance(k) where a single firing overshoots the target: the next
    advance must not fire anything extra (the drive loop used to drain
    once more, breaking incremental FLOP parity on scalar backends)."""
    p_one, p_inc = Profiler(), Profiler()
    clear_plan_cache()
    one = repro.compile(make_output_channel_program(), backend=backend,
                        profiler=p_one).run(48)
    clear_plan_cache()
    session = repro.compile(make_output_channel_program(), backend=backend,
                            profiler=p_inc)
    inc = np.concatenate([session.run(1) for _ in range(48)])
    np.testing.assert_array_equal(inc, one)
    assert_counts_equal(p_one, p_inc, backend)


def test_output_channel_streams_extrapolate():
    """Long plan-backend runs paced by the graph output channel (no
    Collector) must reach the steady-regime replay, not simulate one
    pass per output."""
    clear_plan_cache()
    session = repro.compile(make_output_channel_program(), backend="plan")
    n = 160_000
    out = session.run(n)
    assert len(out) == n
    # O(outputs) literal passes would dwarf this bound; the replay keeps
    # the lifetime counter near the number of windows, not outputs
    assert session._executor._passes < n // 4


def test_push_sessions_are_cache_single_use():
    """A push harness contains a consumed-in-place ChunkSource, so its
    entry is never shared: two identical compiles both miss."""
    clear_plan_cache()
    repro.compile(low_pass_filter(1.0, math.pi / 3, 16), backend="plan")
    repro.compile(low_pass_filter(1.0, math.pi / 3, 16), backend="plan")
    stats = plan_cache_stats()
    assert stats["misses"] == 2 and stats["entries"] == 0


# ---------------------------------------------------------------------------
# Session lifecycle: close(), pin release, typed construction errors
# ---------------------------------------------------------------------------


def test_close_unpins_plan_entry():
    clear_plan_cache()
    session = repro.compile(small("FIR"), backend="plan")
    entry = session.cache_entry
    assert entry.pins == 1
    session.close()
    assert entry.pins == 0 and session.closed
    session.close()  # idempotent: a second close is a no-op
    assert entry.pins == 0


def test_context_manager_closes_session():
    clear_plan_cache()
    with repro.compile(small("FIR"), backend="plan") as session:
        entry = session.cache_entry
        session.run(16)
        assert entry.pins == 1
    assert session.closed and entry.pins == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_closed_session_raises_typed_error(backend):
    from repro.errors import SessionClosedError

    session = repro.compile(small("FIR"), backend=backend)
    session.close()
    for call in (lambda: session.run(8), lambda: session.reset()):
        with pytest.raises(SessionClosedError):
            call()


def test_bad_compile_options_raise_typed_error():
    from repro.errors import CompileOptionError

    with pytest.raises(CompileOptionError) as ei:
        repro.compile(small("FIR"), backend="vectorized")
    assert ei.value.option == "backend"
    assert "vectorized" in str(ei.value)
    with pytest.raises(CompileOptionError) as ei:
        repro.compile(small("FIR"), optimize="everything")
    assert ei.value.option == "optimize"
    # the old contract still holds: both are ValueErrors
    assert issubclass(CompileOptionError, ValueError)


def test_push_rejects_non_numeric_chunks():
    from repro.errors import ChunkDtypeError

    _source, body = split_app(small("FIR"))
    with repro.compile(body, backend="plan") as session:
        with pytest.raises(ChunkDtypeError):
            session.push(np.array([1 + 2j, 3 - 1j]))
        with pytest.raises(ChunkDtypeError):
            session.push(np.array(["a", "b"]))
        assert issubclass(ChunkDtypeError, TypeError)
        # the session survives the rejection
        assert len(session.push(np.zeros(64))) > 0
