"""Tests for the measurement machinery (repro.bench)."""

import math

import numpy as np
import pytest

from repro.apps.common import compressor, expander, low_pass_filter
from repro.bench import (build_config, format_table, leaf_only_lmap,
                         measure, removal_percent, speedup_percent)
from repro.graph import Pipeline, leaf_filters
from repro.linear import LinearFilter
from repro.runtime import Collector, FunctionSource, run_graph


def tiny_program(taps=8):
    return Pipeline([
        FunctionSource(lambda n: math.sin(0.1 * n), "src"),
        low_pass_filter(1.0, math.pi / 3, taps, name="lp1"),
        low_pass_filter(1.0, math.pi / 4, taps, name="lp2"),
        Collector(),
    ], name="tiny")


def test_removal_percent():
    assert removal_percent(100, 25) == 75.0
    assert removal_percent(100, 150) == -50.0
    assert removal_percent(0, 10) == 0.0


def test_speedup_percent():
    assert speedup_percent(2.0, 1.0) == pytest.approx(100.0)
    assert speedup_percent(1.0, 2.0) == pytest.approx(-50.0)


def test_format_table_alignment():
    text = format_table("T", ["a", "b"], [["x", 1.5], ["y", -2.25]],
                        width=6)
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "b" in lines[2]
    assert any("1.5" in ln for ln in lines)


@pytest.mark.parametrize("config", ["original", "linear", "linear_nc",
                                    "freq", "freq_nc", "autosel",
                                    "linear_blas", "redund"])
def test_all_configs_build_and_agree(config):
    base = run_graph(tiny_program(), 64)
    stream = build_config(tiny_program(), config)
    got = run_graph(stream, 64)
    np.testing.assert_allclose(got, base, atol=1e-8)


def test_unknown_config_rejected():
    with pytest.raises(ValueError):
        build_config(tiny_program(), "bogus")


def test_measure_returns_per_output_metrics():
    m = measure(tiny_program(), "original", 32)
    assert m.outputs == 32
    assert m.flops > 0 and m.mults > 0
    assert m.flops_per_output == m.flops / 32
    assert m.seconds > 0


def test_linear_config_collapses_the_run():
    stream = build_config(tiny_program(), "linear")
    linear_leaves = [f for f in leaf_filters(stream)
                     if isinstance(f, LinearFilter)]
    assert len(linear_leaves) == 1  # both low-passes combined


def test_nc_config_keeps_filters_separate():
    stream = build_config(tiny_program(), "linear_nc")
    linear_leaves = [f for f in leaf_filters(stream)
                     if isinstance(f, LinearFilter)]
    assert len(linear_leaves) == 2


def test_nc_combination_reduces_mults_only_with_combination():
    """The Figure 5-4 mechanism in miniature: two cascaded FIRs halve
    their mults only when combined."""
    m_nc = measure(tiny_program(), "linear_nc", 64)
    m_c = measure(tiny_program(), "linear", 64)
    assert m_c.mults < m_nc.mults


def test_leaf_only_lmap_drops_containers():
    prog = tiny_program()
    lmap = leaf_only_lmap(prog)
    assert not lmap.is_linear(prog)
    for f in leaf_filters(prog):
        if f.name.startswith("lp"):
            assert lmap.is_linear(f)


def test_compare_conflicts_with_backend_and_optimize_flags():
    """--compare sweeps its own backend x optimize matrix; explicit
    flags must error instead of being silently dropped."""
    from repro.bench import main as bench_main

    for extra in (["--backend", "plan"], ["--optimize", "auto"],
                  ["--backend", "compiled", "--optimize", "linear"]):
        with pytest.raises(SystemExit) as exc:
            bench_main(["--app", "fir", "--compare", "--outputs", "64"]
                       + extra)
        assert exc.value.code == 2  # argparse usage error


def test_chunked_flag_validation():
    from repro.bench import main as bench_main

    for argv in (["--app", "fir", "--compare", "--chunked"],
                 ["--app", "fir", "--chunk-size", "64"],
                 ["--app", "fir", "--chunked", "--chunk-size", "0"]):
        with pytest.raises(SystemExit) as exc:
            bench_main(argv + ["--outputs", "64"])
        assert exc.value.code == 2


def test_chunked_mode_emits_batch_and_chunked_records(capsys):
    import json

    from repro.bench import main as bench_main

    assert bench_main(["--app", "fir", "--chunked", "--outputs", "512",
                       "--chunk-size", "128"]) == 0
    rec = json.loads(capsys.readouterr().out)
    assert rec["chunk_size"] == 128
    assert rec["batch"]["outputs"] == 512
    assert rec["chunked"]["outputs"] >= 512
    assert rec["chunked_vs_batch"] > 0
    # both rows do the same work per output modulo the harness swap
    assert rec["chunked"]["flops_per_output"] <= \
        rec["batch"]["flops_per_output"]


def test_measure_chunked_matches_batch_flops_per_output():
    """For a body with a zero-flop source the per-output FLOP cost of
    chunked streaming equals the batch session's exactly."""
    from repro.apps import fir
    from repro.bench import measure_chunked

    m = measure_chunked(fir.build(taps=32), "original", 256,
                        backend="plan", chunk_size=64)
    assert m.outputs >= 256
    # 32-tap FIR: 32 mults + 31 adds + 1 idx op cost per output from the
    # filter alone; the harness adds nothing
    assert m.flops_per_output == pytest.approx(63.0, abs=1.0)


def test_rate_changer_configs_equivalent():
    prog = Pipeline([
        FunctionSource(lambda n: float(n % 7), "src"),
        expander(2),
        low_pass_filter(2.0, math.pi / 2, 10),
        compressor(3),
        Collector(),
    ], name="ratec-mini")

    def fresh():
        return Pipeline(list(prog.children), name=prog.name)

    base = run_graph(fresh(), 40)
    for config in ("linear", "freq", "autosel"):
        got = run_graph(build_config(fresh(), config), 40)
        np.testing.assert_allclose(got, base, atol=1e-8, err_msg=config)


class TestBenchDSL:
    """``--dsl``: benchmark arbitrary DSL sources through the same
    measurement machinery as the named apps."""

    @staticmethod
    def _app_dsl(name):
        import os

        from repro.apps._loader import DSL_DIR
        return os.path.join(DSL_DIR, name + ".str")

    def test_dsl_mode_measures_the_elaborated_program(self, capsys):
        import json

        from repro.bench import main as bench_main

        assert bench_main(["--dsl", self._app_dsl("common"),
                           "--dsl", self._app_dsl("fir"),
                           "--top", "FIRProgram", "--dsl-args", "32",
                           "--outputs", "256"]) == 0
        rec = json.loads(capsys.readouterr().out)
        assert rec["app"] == "FIRProgram"
        assert rec["outputs"] == 256
        # a 32-tap FIR is one multiply and one add per tap per output
        assert rec["flops_per_output"] == 64.0

    def test_dsl_mode_applies_configs(self, capsys):
        import json

        from repro.bench import main as bench_main

        argv = ["--dsl", self._app_dsl("common"),
                "--dsl", self._app_dsl("fir"),
                "--top", "FIRProgram", "--dsl-args", "32",
                "--outputs", "256", "--backend", "compiled"]
        assert bench_main(argv) == 0
        original = json.loads(capsys.readouterr().out)
        assert bench_main(argv + ["--config", "linear"]) == 0
        linear = json.loads(capsys.readouterr().out)
        assert linear["mults"] <= original["mults"]

    def test_dsl_parse_error_renders_diagnostics(self, tmp_path, capsys):
        from repro.bench import main as bench_main

        bad = tmp_path / "bad.str"
        bad.write_text("float->float filter F {\n"
                       "    work pop 1 push 1 {\n"
                       "        float x = pop()\n"
                       "    }\n"
                       "}\n")
        assert bench_main(["--dsl", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error[dsl-expected]" in err
        assert "^" in err  # caret snippet, not just a message

    def test_dsl_flag_validation(self):
        from repro.bench import main as bench_main

        for argv in ([],                              # neither mode
                     ["--app", "fir", "--dsl", "x"],  # both modes
                     ["--app", "fir", "--top", "X"],
                     ["--app", "fir", "--dsl-args", "1"],
                     ["--dsl", "x.str", "--serve"]):
            with pytest.raises(SystemExit) as exc:
                bench_main(argv)
            assert exc.value.code == 2
