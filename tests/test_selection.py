"""Optimization selection tests (thesis §4.3)."""

import numpy as np
import pytest

from repro.graph import Duplicate, Pipeline, RoundRobin, SplitJoin
from repro.ir import FilterBuilder
from repro.linear import LinearFilter, LinearNode
from repro.runtime import Collector, ListSource, run_stream
from repro.selection import (OptimizationSelector, direct_cost,
                             frequency_cost, select_optimizations)


def make_fir(coeffs, name="FIR"):
    n = len(coeffs)
    f = FilterBuilder(name, peek=n, pop=1, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    return f.build()


def make_nonlinear(name="NL"):
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    with f.work():
        x = f.local("x", f.pop_expr())
        f.push(x * x)
    return f.build()


def rand_coeffs(n, seed=0):
    return np.random.default_rng(seed).normal(size=n).tolist()


# ---------------------------------------------------------------------------
# cost functions
# ---------------------------------------------------------------------------


class TestCosts:
    def test_direct_cost_formula(self):
        node = LinearNode.from_coefficients(
            [[1.0, 0.0, 2.0]], [5.0], pop=1)
        assert direct_cost(node) == 185 + 2 * 1 + 1 + 3 * 2

    def test_frequency_wins_for_large_fir(self):
        big = LinearNode(np.ones((256, 1)), np.zeros(1), 256, 1, 1)
        assert frequency_cost(big) < direct_cost(big)

    def test_direct_wins_for_tiny_fir(self):
        tiny = LinearNode(np.ones((2, 1)), np.zeros(1), 2, 1, 1)
        assert direct_cost(tiny) < frequency_cost(tiny)

    def test_large_pop_penalizes_frequency(self):
        """The Radar property: pop 24 makes frequency catastrophic."""
        node = LinearNode(np.ones((24, 2)), np.zeros(2), 24, 24, 2)
        assert frequency_cost(node) > 10 * direct_cost(node)


# ---------------------------------------------------------------------------
# end-to-end selection
# ---------------------------------------------------------------------------


def equivalent_outputs(original, optimized, n_out=40, n_in=4000, seed=0):
    inputs = np.random.default_rng(seed).normal(size=n_in).tolist()
    a = run_stream(original, inputs, n_out)
    b = run_stream(optimized, inputs, n_out)
    np.testing.assert_allclose(a, b, atol=1e-8)


class TestSelection:
    def test_two_small_firs_combine_linear(self):
        """Adjacent small FIRs: combination wins, frequency does not."""
        pipe = Pipeline([make_fir([1.0, 2.0], "f1"),
                         make_fir([0.5, -0.5], "f2")])
        result = select_optimizations(pipe)
        assert isinstance(result.stream, LinearFilter)
        equivalent_outputs(pipe, result.stream)

    def test_large_fir_goes_to_frequency(self):
        coeffs = rand_coeffs(128, seed=1)
        pipe = Pipeline([make_fir(coeffs, "big")])
        result = select_optimizations(pipe)
        names = [type(s).__name__ for s in
                 ([result.stream] if not isinstance(result.stream, Pipeline)
                  else result.stream.children)]
        assert any("Freq" in n for n in names), names
        equivalent_outputs(pipe, result.stream, n_out=30)

    def test_nonlinear_children_left_alone(self):
        pipe = Pipeline([make_nonlinear("n1"), make_nonlinear("n2")])
        result = select_optimizations(pipe)
        assert result.cost == 0.0
        equivalent_outputs(pipe, result.stream)

    def test_linear_run_between_nonlinear(self):
        """A linear island inside a nonlinear pipeline gets collapsed."""
        pipe = Pipeline([
            make_nonlinear("pre"),
            make_fir([1.0, 1.0], "f1"),
            make_fir([1.0, -1.0], "f2"),
            make_nonlinear("post"),
        ])
        result = select_optimizations(pipe)
        assert isinstance(result.stream, Pipeline)
        kinds = [type(c).__name__ for c in result.stream.children]
        assert kinds.count("LinearFilter") == 1
        assert kinds.count("Filter") == 2
        equivalent_outputs(pipe, result.stream)

    def test_degrading_combination_avoided(self):
        """A column-vector times row-vector pipeline must NOT combine
        (the thesis' worst case: O(N) ops becoming O(N^2))."""
        n = 24
        down = FilterBuilder("down", peek=n, pop=1, push=1)
        with down.work():
            s = down.local("s", 0.0)
            with down.loop("i", 0, n) as i:
                down.assign(s, s + down.peek(i) * 3.0)
            down.push(s)
            down.pop()
        up = FilterBuilder("up", peek=1, pop=1, push=n)
        with up.work():
            v = up.local("v", up.pop_expr())
            with up.loop("i", 0, n):
                up.push(v * 2.0)
        pipe = Pipeline([down.build(), up.build()])
        selector = OptimizationSelector(pipe)
        best = selector.best(pipe)
        # combined: nnz = n*n; separate: nnz = n + n
        combined_node = selector._node_for_range(pipe, 0, 2)
        assert combined_node is not None
        assert best.choice == "cut"
        equivalent_outputs(pipe, best.stream)

    def test_splitjoin_selection_collapses(self):
        sj = SplitJoin(Duplicate(),
                       [make_fir([1.0, 2.0], "a"), make_fir([3.0, 4.0], "b")],
                       RoundRobin((1, 1)))
        prog = Pipeline([sj])
        result = select_optimizations(prog)
        assert isinstance(result.stream, LinearFilter)
        equivalent_outputs(prog, result.stream)

    def test_splitjoin_partial_linearity_cut(self):
        """One nonlinear branch: the linear branch still optimizes."""
        sj = SplitJoin(Duplicate(),
                       [make_fir(rand_coeffs(64, 2), "lin"),
                        make_nonlinear("nl")],
                       RoundRobin((1, 1)))
        prog = Pipeline([sj])
        result = select_optimizations(prog)
        equivalent_outputs(prog, result.stream, n_out=30)

    def test_selection_cost_not_worse_than_pure_strategies(self):
        """Autosel <= min(all-linear, all-freq) by construction; sanity
        check on a mixed program."""
        pipe = Pipeline([
            make_fir(rand_coeffs(96, 3), "big"),
            make_fir([1.0, -1.0], "small"),
        ])
        selector = OptimizationSelector(pipe)
        best = selector.best(pipe)
        node = selector._node_for_range(pipe, 0, 2)
        full_linear = selector._collapse_configs(node, 1.0, "x")[0].cost
        assert best.cost <= full_linear + 1e-9
        equivalent_outputs(pipe, best.stream, n_out=30)
