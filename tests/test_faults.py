"""Fault injection, degradation, and recovery: the robustness layer.

The acceptance bar extends the serving suite's invisibility principle
to *failure*: with faults injected at every site class — kernel raises
mid-advance, cache lookups, pool compile/recycle, corrupted / dropped /
truncated frames — a resumable client's outputs must stay
bitwise-identical to the fault-free run, the pool's session books must
balance (nothing leaks), and every recovery action must be visible in
the metrics rather than in the data.
"""

import asyncio
import inspect
import os
import tempfile
import time

import numpy as np
import pytest

from repro import errors, faults
from repro.errors import FaultInjected, ProtocolError
from repro.serve import (RETRYABLE, WIRE_CODES, ServeClient, ServeConfig,
                         SessionPool, StreamServer, wire_code)
from repro.serve import protocol as P
from repro.serve.chaos import CHAOS_DSL, run_chaos
from repro.session import StreamSession


def smooth_graph():
    from repro.dsl import compile_source
    return compile_source(CHAOS_DSL)


def smooth_chunks(n_chunks=6, chunk=64, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(chunk) for _ in range(n_chunks)]


def smooth_expected(chunks, backend="compiled"):
    session = StreamSession(smooth_graph(), backend=backend)
    try:
        return [session.push(c) for c in chunks]
    finally:
        session.close()


def serve_test(fn, config=None):
    """Run ``fn(server, path)`` against a fresh unix-socket server."""

    async def main():
        server = StreamServer(config=config)
        sockdir = tempfile.mkdtemp(prefix="repro-faults-test-")
        path = os.path.join(sockdir, "s")
        await server.start(path=path)
        try:
            return await fn(server, path)
        finally:
            await server.aclose()
            try:
                os.unlink(path)
                os.rmdir(sockdir)
            except OSError:
                pass

    return asyncio.run(main())


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test must leave the process with no active fault plan."""
    yield
    assert faults.ACTIVE is None, "test leaked an installed FaultPlan"
    faults.uninstall()


# ---------------------------------------------------------------------------
# FaultPlan mechanics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = faults.FaultPlan(seed=11, rates={"wire.drop": 0.5})
        b = faults.FaultPlan(seed=11, rates={"wire.drop": 0.5})
        da = [a.roll("wire.drop") for _ in range(64)]
        db = [b.roll("wire.drop") for _ in range(64)]
        assert da == db and any(da) and not all(da)

    def test_sites_have_independent_streams(self):
        plan = faults.FaultPlan(seed=1, rates={"wire.drop": 0.5,
                                               "wire.corrupt": 0.5})
        drops = [plan.roll("wire.drop") for _ in range(64)]
        # interleaving another site's rolls must not perturb a site's
        # own decision stream
        plan2 = faults.FaultPlan(seed=1, rates={"wire.drop": 0.5,
                                                "wire.corrupt": 0.5})
        drops2 = []
        for _ in range(64):
            plan2.roll("wire.corrupt")
            drops2.append(plan2.roll("wire.drop"))
        assert drops == drops2

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultPlan(rates={"kernel.stpe": 1.0})

    def test_max_per_site_caps_firings(self):
        plan = faults.FaultPlan(rates={"kernel.step": 1.0},
                                max_per_site=2)
        fired = sum(plan.roll("kernel.step") for _ in range(10))
        assert fired == 2
        assert plan.counts()["attempts"]["kernel.step"] == 10

    def test_suppress_masks_all_sites(self):
        plan = faults.FaultPlan(rates={"kernel.step": 1.0})
        with faults.suppress():
            assert not plan.roll("kernel.step")
            with faults.suppress():  # re-entrant
                assert not plan.roll("kernel.step")
            assert not plan.roll("kernel.step")
        assert plan.roll("kernel.step")

    def test_fired_by_class_groups_prefixes(self):
        plan = faults.FaultPlan(rates={"wire.drop": 1.0,
                                       "wire.corrupt": 1.0,
                                       "kernel.step": 1.0})
        for site in ("wire.drop", "wire.corrupt", "kernel.step"):
            plan.roll(site)
        by_class = plan.fired_by_class()
        assert by_class["wire"] == 2 and by_class["kernel"] == 1
        assert by_class["cache"] == 0 and by_class["pool"] == 0

    def test_disabled_is_inert(self):
        # rate-0 sites never fire but still count coverage attempts
        plan = faults.FaultPlan()
        assert not any(plan.roll("wire.drop") for _ in range(8))
        assert plan.counts()["attempts"]["wire.drop"] == 8


def test_kernel_site_fires_through_plan_session():
    chunks = smooth_chunks()
    session = StreamSession(smooth_graph(), backend="plan")
    plan = faults.install(faults.FaultPlan(
        seed=3, rates={"kernel.step": 1.0}, max_per_site=1))
    try:
        with pytest.raises(FaultInjected) as ei:
            for c in chunks:
                session.push(c)
        assert ei.value.site == "kernel.step"
        assert plan.fired["kernel.step"] == 1
    finally:
        faults.uninstall()
        session.close()


# ---------------------------------------------------------------------------
# Snapshot / restore
# ---------------------------------------------------------------------------


class TestSnapshotRestore:
    def test_same_backend_restore_is_bitwise(self):
        chunks = smooth_chunks()
        expected = smooth_expected(chunks, backend="plan")
        session = StreamSession(smooth_graph(), backend="plan")
        try:
            outs = [session.push(c) for c in chunks[:3]]
            snap = session.snapshot()
            tail_once = [session.push(c) for c in chunks[3:]]
            session.restore(snap)
            tail_again = [session.push(c) for c in chunks[3:]]
            got = np.concatenate(outs + tail_again)
            assert got.tobytes() == np.concatenate(expected).tobytes()
            assert (np.concatenate(tail_once).tobytes()
                    == np.concatenate(tail_again).tobytes())
        finally:
            session.close()

    def test_cross_backend_restore_is_bitwise(self):
        # the degradation path: a plan session's snapshot restored into
        # a compiled session must continue the stream bit-for-bit
        chunks = smooth_chunks()
        expected = smooth_expected(chunks)
        plan_sess = StreamSession(smooth_graph(), backend="plan")
        head = [plan_sess.push(c) for c in chunks[:3]]
        snap = plan_sess.snapshot()
        plan_sess.close()

        compiled = StreamSession(smooth_graph(), backend="compiled")
        try:
            compiled.restore(snap)
            tail = [compiled.push(c) for c in chunks[3:]]
            got = np.concatenate(head + tail)
            assert got.tobytes() == np.concatenate(expected).tobytes()
        finally:
            compiled.close()

    def test_restore_after_injected_failure(self):
        # the server's recovery recipe in miniature: fault mid-push,
        # restore the checkpoint, re-run the same push
        chunks = smooth_chunks()
        expected = smooth_expected(chunks, backend="plan")
        session = StreamSession(smooth_graph(), backend="plan")
        try:
            outs = [session.push(chunks[0])]
            snap = session.snapshot()
            faults.install(faults.FaultPlan(
                rates={"kernel.step": 1.0}, max_per_site=1))
            try:
                with pytest.raises(FaultInjected):
                    session.push(chunks[1])
            finally:
                faults.uninstall()
            session.restore(snap)
            outs += [session.push(c) for c in chunks[1:]]
            got = np.concatenate(outs)
            assert got.tobytes() == np.concatenate(expected).tobytes()
        finally:
            session.close()

    def test_journal_limit_zero_disables_snapshots(self):
        session = StreamSession(smooth_graph(), backend="plan",
                                journal_limit=0)
        try:
            session.push(smooth_chunks(1)[0])
            assert session.snapshot() is None
        finally:
            session.close()


# ---------------------------------------------------------------------------
# Wire integrity + the error-code contract
# ---------------------------------------------------------------------------


def _reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_corrupted_payload_is_typed_crc_error():
    async def main():
        data = bytearray(P.encode_frame(P.PUSH, b"\x00" * 16))
        data[-1] ^= 0x01  # one flipped bit in the payload
        return await P.read_frame(_reader(bytes(data)))

    with pytest.raises(ProtocolError) as ei:
        asyncio.run(main())
    assert ei.value.code == "corrupt"


def test_corrupted_header_crc_is_typed_crc_error():
    async def main():
        data = bytearray(P.encode_frame(P.RUN, (8).to_bytes(4, "big")))
        data[5] ^= 0x01  # flip a bit of the header's CRC field instead
        return await P.read_frame(_reader(bytes(data)))

    with pytest.raises(ProtocolError) as ei:
        asyncio.run(main())
    assert ei.value.code == "corrupt"


#: The stable public contract: every ``ReproError`` subclass a server
#: can raise maps to exactly this wire code.  Extending ``errors.py``
#: without extending ``WIRE_CODES`` (or this table) fails the test.
EXPECTED_CODES = {
    "StreamGraphError": "bad-request",
    "SchedulingError": "bad-request",
    "IRError": "bad-request",
    "InterpError": "exec",
    "NonLinearError": "exec",
    "CombinationError": "exec",
    "CompileOptionError": "bad-option",
    "ChunkDtypeError": "bad-dtype",
    "SessionClosedError": "closed",
    "SessionPoisonedError": "poisoned",
    "DeadlineError": "timeout",
    "FaultInjected": "exec",
    "DSLError": "bad-request",
    "ReproError": "exec",
}


def test_every_public_error_maps_to_a_stable_wire_code():
    public = {name: obj for name, obj in vars(errors).items()
              if inspect.isclass(obj)
              and issubclass(obj, errors.ReproError)}
    # ProtocolError carries its own code field; everything else must
    # resolve through the declarative table
    assert set(public) == set(EXPECTED_CODES) | {"ProtocolError"}
    for name, cls in public.items():
        if name == "ProtocolError":
            continue
        resolved = next((code for etype, code in WIRE_CODES
                         if issubclass(cls, etype)), None)
        assert resolved == EXPECTED_CODES[name], (
            f"{name}: WIRE_CODES resolves to {resolved!r}, contract "
            f"says {EXPECTED_CODES[name]!r}")


def test_wire_code_orders_subclasses_before_bases():
    assert wire_code(errors.SessionPoisonedError("x")) == "poisoned"
    assert wire_code(errors.DeadlineError("x")) == "timeout"
    assert wire_code(errors.ProtocolError("x", code="backpressure")) \
        == "backpressure"
    assert wire_code(RuntimeError("x")) == "internal"


def test_abrupt_server_disconnect_mid_push_stream_is_typed():
    """A server that vanishes mid-stream must surface as ProtocolError
    (typed, with a retryable code) — never a bare ConnectionResetError
    or a hang."""

    async def main():
        hits = {"n": 0}

        async def flaky(reader, writer):
            # speak just enough protocol: ack the OPEN, swallow one
            # PUSH, then yank the transport with replies owed
            frame = await P.read_frame(reader)
            assert frame.kind == P.OPEN
            await P.write_frame(writer, P.OK)
            await P.read_frame(reader)
            hits["n"] += 1
            writer.transport.abort()

        sockdir = tempfile.mkdtemp(prefix="repro-flaky-")
        path = os.path.join(sockdir, "s")
        server = await asyncio.start_unix_server(flaky, path)
        try:
            client = await ServeClient.connect(path=path)
            await client.open(dsl=CHAOS_DSL)
            chunks = smooth_chunks(4)
            with pytest.raises(ProtocolError) as ei:
                async for _out in client.push_stream(chunks, window=2):
                    pass
            await client.close()
            assert hits["n"] == 1
            return ei.value.code
        finally:
            server.close()
            await server.wait_closed()
            os.unlink(path)
            os.rmdir(sockdir)

    code = asyncio.run(main())
    assert code in ("disconnected", "bad-frame")
    assert code in RETRYABLE


# ---------------------------------------------------------------------------
# Graceful degradation (plan -> compiled) and the circuit breaker
# ---------------------------------------------------------------------------


def test_degradation_is_invisible_to_the_client():
    chunks = smooth_chunks()
    expected = smooth_expected(chunks)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path, retries=4,
                                           retry_seed=0)
        outs = []
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            outs.append(await client.push(chunks[0]))
            faults.install(faults.FaultPlan(
                rates={"kernel.step": 1.0}, max_per_site=1))
            try:
                outs.append(await client.push(chunks[1]))
            finally:
                faults.uninstall()
            for c in chunks[2:]:
                outs.append(await client.push(c))
            await client.close_session()
        finally:
            await client.close()
        snap = server.stats_snapshot()
        return outs, snap, client.retries_used

    outs, snap, retries = serve_test(scenario)
    got = np.concatenate(outs)
    assert got.tobytes() == np.concatenate(expected).tobytes()
    # the fault was absorbed server-side: one degraded re-run, zero
    # client-visible retries
    assert snap.get("serve.requests.degraded") == 1
    assert retries == 0
    assert snap.get("serve.sessions.degraded") == 1


def test_degradation_disabled_surfaces_the_fault():
    chunks = smooth_chunks(2)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            faults.install(faults.FaultPlan(
                rates={"kernel.step": 1.0}, max_per_site=1))
            try:
                with pytest.raises(ProtocolError) as ei:
                    await client.push(chunks[0])
            finally:
                faults.uninstall()
            return ei.value.code
        finally:
            await client.close()

    code = serve_test(scenario, config=ServeConfig(degrade=False))
    assert code == "exec"


def test_circuit_breaker_quarantines_after_threshold():
    clock = {"now": 0.0}
    pool = SessionPool(breaker_threshold=3, breaker_cooldown=10.0,
                       clock=lambda: clock["now"])
    key = ("digest", 0, "plan", "none", "push")
    assert not pool.quarantined(key)
    pool.record_poison(key)
    pool.record_poison(key)
    assert not pool.quarantined(key)  # below threshold
    pool.record_poison(key)
    assert pool.quarantined(key)
    clock["now"] = 10.0  # cooldown elapsed: clean slate
    assert not pool.quarantined(key)
    pool.record_poison(key)  # old strikes were forgotten
    assert not pool.quarantined(key)


def test_quarantined_plan_key_opens_on_compiled_backend():
    chunks = smooth_chunks(3)
    expected = smooth_expected(chunks)

    async def scenario(server, path):
        # trip the breaker by hand for the plan key this OPEN will use
        key, _label, _factory = server._resolve_spec(
            {"dsl": CHAOS_DSL, "backend": "plan"})
        for _ in range(server.config.breaker_threshold):
            server.pool.record_poison(key)
        client = await ServeClient.connect(path=path)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan")
            outs = [await client.push(c) for c in chunks]
            await client.close_session()
        finally:
            await client.close()
        return outs, server.stats_snapshot()

    outs, snap = serve_test(scenario)
    assert (np.concatenate(outs).tobytes()
            == np.concatenate(expected).tobytes())
    assert snap.get("serve.sessions.quarantine_opens") == 1


# ---------------------------------------------------------------------------
# Idempotent retries and RESUME
# ---------------------------------------------------------------------------


def test_rpush_replay_never_double_applies():
    chunks = smooth_chunks()
    expected = smooth_expected(chunks)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            # an id far above the client's own counter, so the later
            # client.push() calls never collide with it
            payload = (1 << 40).to_bytes(8, "big") \
                + P.encode_array(chunks[0])
            first = await client._roundtrip(P.RPUSH, payload)
            replay = await client._roundtrip(P.RPUSH, payload)
            rest = [await client.push(c) for c in chunks[1:]]
            await client.close_session()
        finally:
            await client.close()
        return first.array(), replay.array(), rest, \
            server.stats_snapshot()

    first, replay, rest, snap = serve_test(scenario)
    # the replayed id returned the cached reply and advanced nothing:
    # the rest of the stream still matches the fault-free run
    assert first.tobytes() == replay.tobytes()
    got = np.concatenate([first] + rest)
    assert got.tobytes() == np.concatenate(expected).tobytes()
    assert snap.get("serve.requests.replayed") == 1


def test_client_reconnects_and_resumes_transparently():
    chunks = smooth_chunks(8)
    expected = smooth_expected(chunks)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path, retries=5,
                                           retry_seed=0, backoff=0.01)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            outs = [await client.push(c) for c in chunks[:4]]
            client._writer.transport.abort()  # the network "fails"
            outs += [await client.push(c) for c in chunks[4:]]
            await client.close_session()
        finally:
            await client.close()
        return outs, client.resumes, server.stats_snapshot()

    outs, resumes, snap = serve_test(scenario)
    assert (np.concatenate(outs).tobytes()
            == np.concatenate(expected).tobytes())
    assert resumes == 1
    assert snap.get("serve.sessions.resumed") == 1


def test_resume_restores_from_checkpoint_after_reclaim():
    chunks = smooth_chunks(8)
    expected = smooth_expected(chunks)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path, retries=5,
                                           retry_seed=0, backoff=0.01)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            outs = [await client.push(c) for c in chunks[:4]]
            client._writer.transport.abort()
            await asyncio.sleep(0.05)  # let the server park the session
            # simulate the resume_ttl passing: the sweep reclaims the
            # parked session but keeps its checkpoint restorable
            server._sweep_resume(
                now=time.monotonic() + server.config.resume_ttl + 1)
            outs += [await client.push(c) for c in chunks[4:]]
            await client.close_session()
        finally:
            await client.close()
        return outs, server.stats_snapshot()

    outs, snap = serve_test(
        scenario, config=ServeConfig(resume_ttl=30.0))
    assert (np.concatenate(outs).tobytes()
            == np.concatenate(expected).tobytes())
    assert snap.get("serve.sessions.restored") == 1


def test_expired_token_is_resume_lost():
    async def scenario(server, path):
        client = await ServeClient.connect(path=path, retries=3,
                                           retry_seed=0, backoff=0.01)
        try:
            await client.open(dsl=CHAOS_DSL, backend="plan",
                              resumable=True)
            await client.push(smooth_chunks(1)[0])
            client._writer.transport.abort()
            await asyncio.sleep(0.05)
            # both the session and its checkpoint age out
            server._sweep_resume(
                now=time.monotonic() + 2 * server.config.resume_ttl + 1)
            server._sweep_resume(
                now=time.monotonic() + 2 * server.config.resume_ttl + 1)
            with pytest.raises(ProtocolError) as ei:
                await client.push(smooth_chunks(1)[0])
            return ei.value.code
        finally:
            await client.close()

    assert serve_test(scenario) == "resume-lost"


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


def test_shutdown_drains_and_reports_final_stats():
    chunks = smooth_chunks(3)

    async def scenario(server, path):
        client = await ServeClient.connect(path=path)
        try:
            await client.open(dsl=CHAOS_DSL)
            for c in chunks:
                await client.push(c)
            await client.close_session()
        finally:
            await client.close()
        final = await server.shutdown()
        # the dump captured the traffic, and the books balance
        assert "serve.requests" in final
        assert server.final_stats == final
        assert server.pool.accounting()["outstanding"] == 0
        # the listener is gone: new connections are refused
        with pytest.raises((ConnectionError, OSError)):
            await ServeClient.connect(path=path)
        return True

    assert serve_test(scenario)


def test_aclose_waits_for_inflight_requests():
    """Satellite fix: teardown must drain in-flight work instead of
    cancelling worker futures under a running request."""

    async def scenario(server, path):
        client = await ServeClient.connect(path=path)
        await client.open(dsl=CHAOS_DSL, backend="plan")
        chunk = smooth_chunks(1, chunk=1 << 20)[0]

        async def slow_push():
            return await client.push(chunk)

        task = asyncio.ensure_future(slow_push())
        # wait until the push is genuinely in flight (or already done —
        # then aclose is trivially safe and the assertion still bites)
        while server._inflight == 0 and not task.done():
            await asyncio.sleep(0.001)
        await server.aclose()  # must not kill the in-flight push
        out = await task
        await client.close()
        return len(out)

    # inline_fast_path=0 forces every request onto the worker pool —
    # the path the satellite fix protects
    assert serve_test(scenario,
                      config=ServeConfig(inline_fast_path=0)) > 0


# ---------------------------------------------------------------------------
# The chaos harness itself
# ---------------------------------------------------------------------------


def test_mini_chaos_run_holds_parity_and_leaks_nothing():
    r = run_chaos(clients=3, chunks=6, seed=20260807)
    assert r["violations"] == []
    assert r["leaked"] == 0
    assert faults.ACTIVE is None  # harness uninstalled its plan
    # faults really flew: the wire class is statistically unmissable at
    # these rates and volumes
    assert r["fired_by_class"].get("wire", 0) > 0
    assert r["retries"] > 0
