"""Calibration persistence, invalidation, and cost-model consumption.

These are the fast unit tests: calibration *files* are hand-written
(valid, corrupt, stale, or deliberately distorted), never measured —
the real microbenchmark run lives in ``benchmarks/test_calibration.py``
and the CI calibration smoke.  The distorted-file tests are the
load-bearing ones: a calibration claiming an absurdly slow FFT must
visibly flip the selection DP from frequency replacement back to the
dense matmul, proving the DP prices with the measured constants rather
than the modeled :data:`~repro.selection.costs.FFT_THROUGHPUT_PENALTY`.
"""

import json
import os

import numpy as np
import pytest

from repro.apps import fir
from repro.exec import calibrate as C
from repro.exec.kernels import stateful_block_length
from repro.selection import select_optimizations
from repro.selection.costs import (batched_direct_cost,
                                   batched_frequency_cost)


@pytest.fixture(autouse=True)
def calib_dir(tmp_path, monkeypatch):
    """Point the calibration store at an empty throwaway directory."""
    monkeypatch.setenv("REPRO_CALIBRATION_DIR", str(tmp_path))
    C.reset_calibration_cache()
    yield tmp_path
    C.reset_calibration_cache()


def _record(fft_ns=2.0, matmul_ns=1.0, block=128, version=None,
            fingerprint=None, dtypes=("f64",)):
    return {
        "version": C.CALIBRATION_VERSION if version is None else version,
        "fingerprint": fingerprint or C.machine_fingerprint(),
        "dtypes": {name: {
            "matmul_ns_per_flop": {str(e): matmul_ns
                                   for e in C.MATMUL_BUCKETS},
            "fft_ns_per_flop": {str(n): fft_ns for n in C.FFT_BUCKETS},
            "stateful_block": block,
        } for name in dtypes},
    }


def _write(data) -> str:
    path = C.calibration_path()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(data, str):
            f.write(data)
        else:
            json.dump(data, f)
    C.reset_calibration_cache()
    return path


# ---------------------------------------------------------------------------
# Persistence round trip and invalidation
# ---------------------------------------------------------------------------


def test_round_trip():
    cal = C.Calibration(C.machine_fingerprint(),
                        _record(fft_ns=3.5)["dtypes"])
    path = C.save_calibration(cal)
    assert path == C.calibration_path()
    loaded = C.load_calibration()
    assert loaded is not None
    assert loaded.dtypes == cal.dtypes
    assert loaded.fft_ns_per_flop("f64", 1024) == 3.5
    assert loaded.fft_matmul_ratio("f64", peek=64, fft_size=1024) == 3.5


def test_absent_and_corrupt_files_are_invisible():
    assert C.load_calibration() is None  # nothing written yet
    _write("{ not json")
    assert C.load_calibration() is None
    _write([1, 2, 3])  # valid JSON, wrong shape
    assert C.load_calibration() is None
    _write({"version": C.CALIBRATION_VERSION,
            "fingerprint": C.machine_fingerprint(), "dtypes": "nope"})
    assert C.load_calibration() is None


def test_version_mismatch_invalidates():
    _write(_record(version=C.CALIBRATION_VERSION + 1))
    assert C.load_calibration() is None


def test_fingerprint_mismatch_invalidates():
    fp = C.machine_fingerprint()
    fp["numpy"] = "0.0.1-some-other-build"
    _write(_record(fingerprint=fp))
    assert C.load_calibration() is None
    # same file with the real fingerprint loads fine
    _write(_record())
    assert C.load_calibration() is not None


def test_nearest_bucket_lookup():
    cal = C.Calibration(C.machine_fingerprint(), {
        "f64": {"matmul_ns_per_flop": {"16": 1.0, "64": 2.0, "256": 3.0},
                "fft_ns_per_flop": {"256": 10.0, "1024": 20.0},
                "stateful_block": 128}})
    assert cal.matmul_ns_per_flop("f64", 16) == 1.0
    assert cal.matmul_ns_per_flop("f64", 70) == 2.0
    assert cal.matmul_ns_per_flop("f64", 10_000) == 3.0
    assert cal.fft_ns_per_flop("f64", 300) == 10.0
    assert cal.matmul_ns_per_flop("f32", 16) is None  # not calibrated
    assert cal.fft_matmul_ratio("c64") is None


def test_active_calibration_is_lazy_and_resettable():
    assert C.active_calibration() is None
    # write the file WITHOUT resetting: the cached None must stand —
    # only an explicit reset re-reads disk
    with open(C.calibration_path(), "w", encoding="utf-8") as f:
        json.dump(_record(fft_ns=7.0), f)
    assert C.active_calibration() is None
    C.reset_calibration_cache()
    active = C.active_calibration()
    assert active is not None
    assert active.fft_ns_per_flop("f64", 256) == 7.0


def test_warm_path_measures_nothing():
    """ensure_calibration with every requested dtype already on disk
    must return measured=[] — re-measuring would defeat the cache."""
    _write(_record(dtypes=("f64", "f32")))
    cal, measured = C.ensure_calibration(dtypes=("f64", "f32"))
    assert measured == []
    assert set(cal.dtypes) == {"f64", "f32"}
    # and the warm load becomes the process-wide active record
    assert C.active_calibration() is cal


def test_concurrent_writers_never_corrupt_the_file(calib_dir):
    """Many processes saving simultaneously must leave one valid record.

    Regression test for the fixed-temp-name race: every writer staged
    into ``calibration.json.tmp``, so two cold calibrators could
    interleave writes into the same temp file before either rename,
    publishing corrupt JSON.  With per-writer unique temp files each
    ``os.replace`` is atomic and the survivor is one of the written
    records, intact."""
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    procs = [ctx.Process(target=_save_worker, args=(i,)) for i in range(8)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    C.reset_calibration_cache()
    loaded = C.load_calibration()
    assert loaded is not None, "concurrent writers corrupted the file"
    assert set(loaded.stateful_block.values()) <= {16, 32, 64, 128,
                                                   256, 512}
    # no orphaned temp files left behind
    leftovers = [f for f in os.listdir(calib_dir) if f.endswith(".tmp")]
    assert leftovers == []


def _save_worker(i: int) -> None:
    blocks = (16, 32, 64, 128, 256, 512)
    cal = C.Calibration(C.machine_fingerprint(),
                        _record(fft_ns=float(i + 1),
                                block=blocks[i % len(blocks)])["dtypes"])
    for _ in range(20):
        C.save_calibration(cal)


# ---------------------------------------------------------------------------
# Consumption: the DP and the scan kernel must use the measured numbers
# ---------------------------------------------------------------------------


def _fir_choices(taps=256):
    result = select_optimizations(fir.build(taps=taps),
                                  cost_model="batched")
    return {cfg.choice for cfg in result.decisions.values()}


def test_distorted_calibration_flips_the_dp_decision():
    """A 256-tap FIR prefers frequency replacement under the analytic
    2.0x penalty; a calibration claiming a 500x-slower FFT must flip
    the same DP call back to the dense linear collapse."""
    with C.analytic_only():
        assert "freq" in _fir_choices()
    _write(_record(fft_ns=500.0, matmul_ns=1.0))
    assert "freq" not in _fir_choices()
    # and a near-free FFT pulls even a shallow filter into freq
    _write(_record(fft_ns=1e-6, matmul_ns=1.0))
    assert "freq" in _fir_choices(taps=16)


def test_distorted_calibration_moves_the_cost_itself():
    from repro.linear.node import LinearNode

    node = LinearNode(A=np.full((256, 1), 1.0 / 256), b=np.zeros(1),
                      peek=256, pop=1, push=1)
    _write(_record(fft_ns=500.0, matmul_ns=1.0))
    assert batched_frequency_cost(node) > batched_direct_cost(node)
    with C.analytic_only():
        assert batched_frequency_cost(node) < batched_direct_cost(node)


def test_calibrated_stateful_block_cap():
    """pop=push=1 makes the block length equal the cap, so the kernel
    must return the measured block verbatim — and the fixed 128 without
    a calibration."""
    assert stateful_block_length(1, 1) == 128
    _write(_record(block=64))
    assert stateful_block_length(1, 1) == 64
    with C.analytic_only():
        assert stateful_block_length(1, 1) == 128
    _write(_record(block=512))
    assert stateful_block_length(1, 1) == 512
