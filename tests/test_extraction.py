"""Linear extraction analysis tests (thesis §3.2, Algorithms 1-2)."""

import numpy as np
import pytest

from repro.ir import FilterBuilder, call
from repro.linear import extract_filter


def build_example_filter():
    """The thesis' Figure 3-1 ExampleFilter."""
    f = FilterBuilder("ExampleFilter", peek=3, pop=1, push=2)
    with f.work():
        f.push(3 * f.peek(2) + 5 * f.peek(1))
        f.push(2 * f.peek(2) + f.peek(0) + 6)
        f.pop()
    return f.build()


def test_figure_3_1_extraction():
    result = extract_filter(build_example_filter())
    assert result.is_linear
    node = result.node
    assert (node.peek, node.pop, node.push) == (3, 1, 2)
    assert node.coefficient(0, 2) == 3.0
    assert node.coefficient(0, 1) == 5.0
    assert node.coefficient(1, 2) == 2.0
    assert node.coefficient(1, 0) == 1.0
    assert node.offset(1) == 6.0
    assert node.offset(0) == 0.0


def test_fir_filter_extraction():
    """Loop-based FIR: coefficients land in the right positions."""
    coeffs = [0.5, -1.5, 2.0, 0.25]
    f = FilterBuilder("FIR", peek=4, pop=1, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, 4) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    node = result.node
    for i, c in enumerate(coeffs):
        assert node.coefficient(0, i) == pytest.approx(c)


def test_pop_as_expression():
    f = FilterBuilder("Doubler", peek=1, pop=1, push=1)
    with f.work():
        f.push(2 * f.pop_expr())
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.coefficient(0, 0) == 2.0


def test_peek_after_pop_shifts_index():
    """After a pop, peek(i) refers to original index popcount + i."""
    f = FilterBuilder("Shifty", peek=3, pop=2, push=1)
    with f.work():
        f.pop()
        f.push(f.peek(1))  # original peek(2)
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.coefficient(0, 2) == 1.0
    assert result.node.coefficient(0, 1) == 0.0


def test_compressor_is_linear():
    """Compressor(M): push first of M, discard rest (Figure A-4)."""
    m = 4
    f = FilterBuilder("Compressor", peek=m, pop=m, push=1)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, m - 1):
            f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    node = result.node
    assert node.coefficient(0, 0) == 1.0
    assert node.nnz == 1


def test_expander_is_linear():
    """Expander(L): push the input then L-1 zeros (Figure A-5)."""
    f = FilterBuilder("Expander", peek=1, pop=1, push=3)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, 2):
            f.push(0.0)
    result = extract_filter(f.build())
    assert result.is_linear
    node = result.node
    assert node.coefficient(0, 0) == 1.0
    assert node.coefficient(1, 0) == 0.0
    assert node.coefficient(2, 0) == 0.0


def test_product_of_inputs_is_nonlinear():
    f = FilterBuilder("Squarer", peek=1, pop=1, push=1)
    with f.work():
        x = f.local("x", f.pop_expr())
        f.push(x * x)
    result = extract_filter(f.build())
    assert not result.is_linear
    assert "affine" in result.reason


def test_data_dependent_branch_is_nonlinear():
    """ThresholdDetector-style filter: branch on input taints the push."""
    f = FilterBuilder("Thresh", peek=1, pop=1, push=1)
    with f.work():
        t = f.local("t", f.pop_expr())
        cond = f.if_(t > 0.5)
        with cond:
            f.assign(t, 1.0)
        with cond.otherwise():
            f.assign(t, 0.0)
        f.push(t)
    result = extract_filter(f.build())
    assert not result.is_linear


def test_branches_agreeing_stay_linear():
    """Both branches assign the same linear form: join succeeds."""
    f = FilterBuilder("Agree", peek=2, pop=1, push=1)
    g = f.const("g", 3.0)
    with f.work():
        t = f.local("t", 0.0)
        cond = f.if_(g > 1.0)  # constant condition, known side taken
        with cond:
            f.assign(t, f.peek(0) * 2.0)
        with cond.otherwise():
            f.assign(t, f.peek(1))
        f.push(t)
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.coefficient(0, 0) == 2.0


def test_branch_on_input_with_divergent_pushes_fails():
    f = FilterBuilder("Diverge", peek=2, pop=1, push=1)
    with f.work():
        cond = f.if_(f.peek(0) > 0.0)
        with cond:
            f.push(f.peek(1))
        with cond.otherwise():
            f.push(2 * f.peek(1))
        f.pop()
    result = extract_filter(f.build())
    assert not result.is_linear


def test_mutable_state_reads_are_top():
    """Fields written in work are persistent state => pushes of them fail."""
    f = FilterBuilder("Accumulator", peek=1, pop=1, push=1)
    acc = f.state("acc", 0.0)
    with f.work():
        f.assign(acc, acc + f.pop_expr())
        f.push(acc)
    result = extract_filter(f.build())
    assert not result.is_linear


def test_constant_folding_through_intrinsics():
    f = FilterBuilder("Scaled", peek=1, pop=1, push=1)
    with f.work():
        f.push(call("cos", 0.0) * f.peek(0))
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.coefficient(0, 0) == pytest.approx(1.0)


def test_intrinsic_of_input_is_nonlinear():
    f = FilterBuilder("Sine", peek=1, pop=1, push=1)
    with f.work():
        f.push(call("sin", f.pop_expr()))
    assert not extract_filter(f.build()).is_linear


def test_division_by_constant_is_linear():
    f = FilterBuilder("Halver", peek=1, pop=1, push=1)
    with f.work():
        f.push(f.pop_expr() / 2.0)
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.coefficient(0, 0) == pytest.approx(0.5)


def test_division_by_input_is_nonlinear():
    f = FilterBuilder("Div", peek=2, pop=1, push=1)
    with f.work():
        f.push(f.peek(0) / f.peek(1))
        f.pop()
    assert not extract_filter(f.build()).is_linear


def test_local_array_accumulation():
    """Linear forms flow through local arrays with constant indices."""
    f = FilterBuilder("ArrayFlow", peek=2, pop=1, push=1)
    with f.work():
        arr = f.local_array("tmp", 2)
        f.assign(arr[0], f.peek(0) * 2.0)
        f.assign(arr[1], f.peek(1) - 1.0)
        f.push(arr[0] + arr[1])
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    node = result.node
    assert node.coefficient(0, 0) == 2.0
    assert node.coefficient(0, 1) == 1.0
    assert node.offset(0) == -1.0


def test_affine_offset_extracted():
    f = FilterBuilder("Offset", peek=1, pop=1, push=1)
    with f.work():
        f.push(f.pop_expr() + 42.0)
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.offset(0) == 42.0


def test_source_and_sink_not_linear():
    src = FilterBuilder("Src", peek=0, pop=0, push=1)
    with src.work():
        src.push(1.0)
    assert not extract_filter(src.build()).is_linear

    sink = FilterBuilder("Sink", peek=1, pop=1, push=0)
    with sink.work():
        sink.pop()
    assert not extract_filter(sink.build()).is_linear


def test_extracted_node_matches_execution():
    """End-to-end: extraction result reproduces the work function."""
    from repro.runtime import run_stream

    filt = build_example_filter()
    result = extract_filter(filt)
    rng = np.random.default_rng(7)
    inputs = rng.normal(size=20).tolist()
    executed = run_stream(filt, inputs, n_outputs=10)
    firings = 5
    predicted = result.node.reference_run(np.array(inputs), firings=firings)
    np.testing.assert_allclose(executed, predicted[:10], atol=1e-12)


def test_nested_loops():
    f = FilterBuilder("Nested", peek=4, pop=1, push=1)
    with f.work():
        s = f.local("s", 0.0)
        with f.loop("i", 0, 2) as i:
            with f.loop("j", 0, 2) as j:
                f.assign(s, s + f.peek(2 * i + j))
        f.push(s)
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    assert all(result.node.coefficient(0, k) == 1.0 for k in range(4))


def test_loop_bound_from_field_constant():
    f = FilterBuilder("FieldBound", peek=3, pop=1, push=1)
    n = f.const("N", 3)
    with f.work():
        s = f.local("s", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + f.peek(i))
        f.push(s)
        f.pop()
    result = extract_filter(f.build())
    assert result.is_linear
    assert result.node.nnz == 3
