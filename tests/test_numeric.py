"""NumericPolicy resolution, wire tags, and complex FLOP scaling."""

import numpy as np
import pytest

from repro.errors import CompileOptionError
from repro.numeric import (DEFAULT_POLICY, DTYPE_CHOICES, POLICIES,
                           NumericPolicy, policy_for_wire_tag,
                           resolve_policy)
from repro.profiling import Counts


class TestResolve:
    def test_none_is_the_float64_default(self):
        assert resolve_policy(None) is DEFAULT_POLICY
        assert DEFAULT_POLICY.is_default
        assert not DEFAULT_POLICY.is_complex

    @pytest.mark.parametrize("name", DTYPE_CHOICES)
    def test_canonical_names(self, name):
        policy = resolve_policy(name)
        assert policy is POLICIES[name]
        assert policy.name == name

    @pytest.mark.parametrize("spec,name", [
        ("float32", "f32"), ("single", "f32"), ("F32", "f32"),
        ("float64", "f64"), ("double", "f64"), ("float", "f64"),
        ("complex64", "c64"), ("complex128", "c128"),
        ("complex", "c128"),
        (np.float32, "f32"), (np.dtype("<f4"), "f32"),
        (np.complex128, "c128"),
    ])
    def test_aliases_and_numpy_specs(self, spec, name):
        assert resolve_policy(spec).name == name

    def test_policy_passthrough(self):
        assert resolve_policy(POLICIES["c64"]) is POLICIES["c64"]

    @pytest.mark.parametrize("spec", ["f16", "int32", "banana", object()])
    def test_unknown_specs_raise_option_error(self, spec):
        with pytest.raises(CompileOptionError) as ei:
            resolve_policy(spec)
        assert ei.value.option == "dtype"
        for choice in DTYPE_CHOICES:
            assert choice in str(ei.value)


class TestWire:
    def test_tags_are_unique_and_roundtrip(self):
        tags = {p.wire_tag for p in POLICIES.values()}
        assert len(tags) == len(POLICIES)
        for p in POLICIES.values():
            assert policy_for_wire_tag(p.wire_tag) is p
        assert policy_for_wire_tag(0) is None
        assert policy_for_wire_tag(99) is None

    def test_wire_fmt_matches_dtype_width(self):
        for p in POLICIES.values():
            assert p.itemsize == p.dtype.itemsize
            assert np.dtype(p.wire_fmt).kind == p.dtype.kind


class TestCastAndScalar:
    def test_cast_preserves_dtype(self):
        p = POLICIES["f32"]
        out = p.cast([1.0, 2.0, 3.0])
        assert out.dtype == np.float32
        # no copy when already in the policy dtype
        src = np.zeros(4, dtype=np.float32)
        assert p.cast(src) is src or p.cast(src).base is src

    def test_scalar_type(self):
        assert isinstance(POLICIES["f64"].scalar(1), float)
        assert isinstance(POLICIES["c64"].scalar(1), complex)


class TestAdjustCounts:
    def test_real_policies_are_identity(self):
        c = Counts(fadd=3, fmul=5, fsub=2, fneg=1)
        for name in ("f64", "f32"):
            assert POLICIES[name].adjust_counts(c) is c

    def test_complex_scaling(self):
        c = Counts(fadd=3, fsub=2, fmul=5, fdiv=1, fcmp=4, fneg=6,
                   fabs=7, fcall=8)
        out = POLICIES["c128"].adjust_counts(c)
        # complex multiply = 4 real mults + 2 real adds; add/sub/neg
        # double; the rest pass through
        assert out.fmul == 20
        assert out.fadd == 2 * 3 + 2 * 5
        assert out.fsub == 4
        assert out.fneg == 12
        assert (out.fdiv, out.fcmp, out.fabs, out.fcall) == (1, 4, 7, 8)

    def test_frozen(self):
        with pytest.raises((AttributeError, TypeError)):
            DEFAULT_POLICY.name = "other"

    def test_repro_reexports(self):
        import repro

        assert repro.resolve_policy("f32") is repro.POLICIES["f32"]
        assert isinstance(repro.DEFAULT_POLICY, NumericPolicy)
