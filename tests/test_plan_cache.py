"""Plan caching: fingerprints, reuse, invalidation, trace replay.

The contract: repeated ``run_graph`` calls on the same (or
content-identical) graph reuse the cached plan — no re-extraction, no
re-simulation — while any in-place mutation of the graph changes the
fingerprint and cleanly invalidates the entry, so results always reflect
the current coefficients.
"""

import numpy as np
import pytest

from repro import exec as rexec
from repro.apps import fir
from repro.exec import (PLAN_CACHE, PlanCache, PlanExecutor,
                        clear_plan_cache, plan_cache_stats,
                        plan_executor_for, stream_fingerprint)
from repro.exec import planner as planner_mod
from repro.errors import InterpError
from repro.profiling import Profiler
from repro.runtime import run_graph


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


# ---------------------------------------------------------------------------
# Reuse
# ---------------------------------------------------------------------------


def test_second_run_reuses_cached_plan(monkeypatch):
    """Two consecutive run_graph calls: planning work happens once."""
    calls = {"n": 0}
    real = planner_mod._vectorize_decision

    def counting(filt):
        calls["n"] += 1
        return real(filt)

    monkeypatch.setattr(planner_mod, "_vectorize_decision", counting)
    program = fir.build(taps=32)
    first = run_graph(program, 100, backend="plan")
    probed = calls["n"]
    assert probed > 0
    second = run_graph(program, 100, backend="plan")
    assert calls["n"] == probed  # no re-extraction on the hit
    assert second == first
    stats = plan_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_content_identical_rebuild_hits_cache():
    """A freshly built graph with the same coefficients shares the plan."""
    run_graph(fir.build(taps=32), 64, backend="plan")
    before = plan_cache_stats()
    run_graph(fir.build(taps=32), 64, backend="plan")
    after = plan_cache_stats()
    assert after["hits"] == before["hits"] + 1
    assert after["entries"] == before["entries"]


def test_cache_entries_keyed_by_optimize_mode():
    program = fir.build(taps=32)
    run_graph(program, 64, backend="plan")
    run_graph(program, 64, backend="plan", optimize="linear")
    assert plan_cache_stats()["entries"] == 2


def test_trace_replay_matches_simulated_run():
    """Same n_outputs replays the recorded schedule; a new n_outputs
    re-simulates — outputs and FLOP counts identical either way."""
    program = fir.build(taps=32)
    p1, p2, p3 = Profiler(), Profiler(), Profiler()
    first = run_graph(program, 120, p1, backend="plan")
    replayed = run_graph(program, 120, p2, backend="plan")
    assert replayed == first
    assert p2.counts.flops == p1.counts.flops
    longer = run_graph(program, 300, p3, backend="plan")
    assert longer[:120] == first
    expected = run_graph(fir.build(taps=32), 300, backend="compiled")
    np.testing.assert_allclose(longer, expected, atol=1e-9)


def test_replayed_executor_cannot_be_rerun():
    program = fir.build(taps=32)
    run_graph(program, 50, backend="plan")  # records the trace
    executor = plan_executor_for(program)
    assert isinstance(executor, PlanExecutor)
    executor.run(50)  # replays
    with pytest.raises(InterpError, match="replay"):
        executor.run(60)


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def test_mutated_graph_invalidates_and_recomputes():
    """In-place coefficient mutation changes the fingerprint; the next
    run re-plans and its outputs reflect the new coefficients."""
    program = fir.build(taps=16)
    stale = run_graph(program, 64, backend="plan")
    assert plan_cache_stats()["misses"] == 1
    # mutate the low-pass filter's taps in place
    from repro.graph.streams import Filter, walk
    filt = next(s for s in walk(program)
                if isinstance(s, Filter) and "h" in s.fields)
    filt.fields["h"][0] += 1.0
    fresh = run_graph(program, 64, backend="plan")
    assert plan_cache_stats()["misses"] == 2
    assert fresh != stale
    expected = run_graph(program, 64, backend="compiled")
    np.testing.assert_allclose(fresh, expected, atol=1e-9)


def test_fingerprint_sensitive_to_structure_and_values():
    base = stream_fingerprint(fir.build(taps=16))
    assert stream_fingerprint(fir.build(taps=16)) == base
    assert stream_fingerprint(fir.build(taps=17)) != base
    mutated = fir.build(taps=16)
    from repro.graph.streams import Filter, walk
    filt = next(s for s in walk(mutated)
                if isinstance(s, Filter) and "h" in s.fields)
    filt.fields["h"][3] *= 2.0
    assert stream_fingerprint(mutated) != base


# ---------------------------------------------------------------------------
# Cache mechanics
# ---------------------------------------------------------------------------


def test_lru_eviction_bounds_entries():
    cache = PlanCache(max_entries=2)
    for taps in (8, 12, 16):
        cache.entry_for(fir.build(taps=taps), "none")
    assert len(cache) == 2
    # taps=8 was evicted; re-requesting it is a miss
    cache.entry_for(fir.build(taps=8), "none")
    assert cache.misses == 4 and cache.hits == 0


def test_cache_false_bypasses_cache():
    program = fir.build(taps=16)
    a = plan_executor_for(program, cache=False).run(64)
    b = plan_executor_for(program, cache=False).run(64)
    assert a == b
    assert plan_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_profilers_not_shared_between_cached_runs():
    """Cached artifacts are immutable; each run profiles independently."""
    program = fir.build(taps=16)
    p1, p2 = Profiler(), Profiler()
    run_graph(program, 64, p1, backend="plan")
    run_graph(program, 64, p2, backend="plan")
    assert p1.counts.flops == p2.counts.flops > 0
