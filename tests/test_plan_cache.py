"""Plan caching: fingerprints, reuse, invalidation, trace replay.

The contract: repeated ``run_graph`` calls on the same (or
content-identical) graph reuse the cached plan — no re-extraction, no
re-simulation — while any in-place mutation of the graph changes the
fingerprint and cleanly invalidates the entry, so results always reflect
the current coefficients.
"""

import numpy as np
import pytest

from repro import exec as rexec
from repro.apps import fir
from repro.exec import (PLAN_CACHE, PlanCache, PlanExecutor,
                        clear_plan_cache, plan_cache_stats,
                        plan_executor_for, stream_fingerprint)
from repro.exec import planner as planner_mod
from repro.errors import InterpError
from repro.profiling import Profiler
from repro.runtime import run_graph


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


# ---------------------------------------------------------------------------
# Reuse
# ---------------------------------------------------------------------------


def test_second_run_reuses_cached_plan(monkeypatch):
    """Two consecutive run_graph calls: planning work happens once."""
    calls = {"n": 0}
    real = planner_mod._vectorize_decision

    def counting(filt):
        calls["n"] += 1
        return real(filt)

    monkeypatch.setattr(planner_mod, "_vectorize_decision", counting)
    program = fir.build(taps=32)
    first = run_graph(program, 100, backend="plan")
    probed = calls["n"]
    assert probed > 0
    second = run_graph(program, 100, backend="plan")
    assert calls["n"] == probed  # no re-extraction on the hit
    assert second == first
    stats = plan_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_content_identical_rebuild_hits_cache():
    """A freshly built graph with the same coefficients shares the plan."""
    run_graph(fir.build(taps=32), 64, backend="plan")
    before = plan_cache_stats()
    run_graph(fir.build(taps=32), 64, backend="plan")
    after = plan_cache_stats()
    assert after["hits"] == before["hits"] + 1
    assert after["entries"] == before["entries"]


def test_cache_entries_keyed_by_optimize_mode():
    program = fir.build(taps=32)
    run_graph(program, 64, backend="plan")
    run_graph(program, 64, backend="plan", optimize="linear")
    assert plan_cache_stats()["entries"] == 2


def test_trace_replay_matches_simulated_run():
    """Same n_outputs replays the recorded schedule; a new n_outputs
    re-simulates — outputs and FLOP counts identical either way."""
    program = fir.build(taps=32)
    p1, p2, p3 = Profiler(), Profiler(), Profiler()
    first = run_graph(program, 120, p1, backend="plan")
    replayed = run_graph(program, 120, p2, backend="plan")
    assert replayed == first
    assert p2.counts.flops == p1.counts.flops
    longer = run_graph(program, 300, p3, backend="plan")
    assert longer[:120] == first
    expected = run_graph(fir.build(taps=32), 300, backend="compiled")
    np.testing.assert_allclose(longer, expected, atol=1e-9)


def test_replayed_executor_resumes_live_simulation():
    """A cached-trace replay installs the recorded simulator end-state,
    so the same executor can keep producing outputs afterwards (the
    session contract) — values and FLOPs identical to a longer run."""
    program = fir.build(taps=32)
    run_graph(program, 50, backend="plan")  # records the trace
    executor = plan_executor_for(program)
    assert isinstance(executor, PlanExecutor)
    first = executor.run(50)  # replays the recorded schedule
    resumed = first + list(executor.advance(10))
    expected = run_graph(fir.build(taps=32), 60, backend="compiled")
    np.testing.assert_allclose(resumed, expected, atol=1e-9)


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def test_mutated_graph_invalidates_and_recomputes():
    """In-place coefficient mutation changes the fingerprint; the next
    run re-plans and its outputs reflect the new coefficients."""
    program = fir.build(taps=16)
    stale = run_graph(program, 64, backend="plan")
    assert plan_cache_stats()["misses"] == 1
    # mutate the low-pass filter's taps in place
    from repro.graph.streams import Filter, walk
    filt = next(s for s in walk(program)
                if isinstance(s, Filter) and "h" in s.fields)
    filt.fields["h"][0] += 1.0
    fresh = run_graph(program, 64, backend="plan")
    assert plan_cache_stats()["misses"] == 2
    assert fresh != stale
    expected = run_graph(program, 64, backend="compiled")
    np.testing.assert_allclose(fresh, expected, atol=1e-9)


def test_mutated_function_source_closure_invalidates():
    """A FunctionSource closing over mutable state must not replay a
    stale plan when that state is mutated in place (the old fingerprint
    hashed the callable by id and reused everything)."""
    from repro.graph import Pipeline
    from repro.runtime import Collector, FunctionSource, run_graph as rg

    state = {"gain": 1.0}

    def build():
        return Pipeline([FunctionSource(lambda n: state["gain"] * n,
                                        "closure-src"),
                         Collector()], name="closure-prog")

    first = rg(build(), 16, backend="plan")
    again = rg(build(), 16, backend="plan")
    assert again == first  # content-identical closure still hits
    assert plan_cache_stats()["hits"] == 1
    state["gain"] = 3.0
    fresh = rg(build(), 16, backend="plan")
    assert plan_cache_stats()["misses"] == 2  # mutation invalidated
    assert fresh == [3.0 * n for n in range(16)]


def test_unsnapshotable_callable_is_single_use():
    """Callable objects with state the fingerprinter cannot encode are
    planned per-run: nothing is stored that a mutation could stale-hit."""
    from repro.graph import Pipeline
    from repro.runtime import Collector, FunctionSource, run_graph as rg

    class Osc:
        def __init__(self):
            self.k = 1.0
            self.opaque = object()  # defeats the __dict__ snapshot

        def __call__(self, n):
            return self.k * n

    osc = Osc()
    prog = Pipeline([FunctionSource(osc, "osc-src"), Collector()],
                    name="osc-prog")
    rg(prog, 8, backend="plan")
    rg(prog, 8, backend="plan")
    stats = plan_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 2
    assert stats["entries"] == 0  # single-use: never stored
    osc.k = 5.0
    out = rg(prog, 8, backend="plan")
    assert out == [5.0 * n for n in range(8)]


def test_bound_builtin_sources_do_not_collide():
    """Builtin bound methods (d.__getitem__) carry their receiver's
    state: sources over different receivers must not share a plan."""
    from repro.graph import Pipeline
    from repro.runtime import Collector, FunctionSource, run_graph as rg

    d1 = {n: float(n) for n in range(8)}
    d2 = {n: 10.0 * n for n in range(8)}
    out1 = rg(Pipeline([FunctionSource(d1.__getitem__, "src"),
                        Collector()], name="p"), 4, backend="plan")
    out2 = rg(Pipeline([FunctionSource(d2.__getitem__, "src"),
                        Collector()], name="p"), 4, backend="plan")
    assert out1 == [0.0, 1.0, 2.0, 3.0]
    assert out2 == [0.0, 10.0, 20.0, 30.0]


def test_function_sources_reading_different_globals_do_not_collide():
    """Identical code bytes reading different module globals must
    fingerprint differently (co_names alone is just the name)."""
    import types as _t

    from repro.graph import Pipeline
    from repro.runtime import Collector, FunctionSource, run_graph as rg

    def make_module_fn(gain):
        mod = _t.ModuleType(f"fake_mod_{gain}")
        mod.GAIN = gain
        code = compile("fn = lambda n: GAIN * n", "<fake>", "exec")
        exec(code, mod.__dict__)
        return mod.fn

    out1 = rg(Pipeline([FunctionSource(make_module_fn(1.0), "src"),
                        Collector()], name="p"), 4, backend="plan")
    out2 = rg(Pipeline([FunctionSource(make_module_fn(100.0), "src"),
                        Collector()], name="p"), 4, backend="plan")
    assert out1 == [0.0, 1.0, 2.0, 3.0]
    assert out2 == [0.0, 100.0, 200.0, 300.0]


def test_mutated_unknown_primitive_state_invalidates():
    """Unknown primitives fingerprint by a __dict__ snapshot, so in-place
    mutation re-plans instead of replaying the stale schedule trace."""
    from repro.graph import Pipeline
    from repro.graph.streams import PrimitiveFilter
    from repro.runtime import Collector, ListSource, run_graph as rg

    class Scaler(PrimitiveFilter):
        peek = pop = push = 1

        def __init__(self, k):
            self.k = k
            self.name = "Scaler"

        def make_runner(self, profiler):
            outer = self

            class _R:
                def fire(self, ch_in, ch_out):
                    ch_out.push(outer.k * ch_in.pop())

            return _R()

    scaler = Scaler(2.0)
    prog = Pipeline([ListSource([1.0, 2.0, 3.0, 4.0]), scaler,
                     Collector()], name="scaler-prog")
    assert rg(prog, 4, backend="plan") == [2.0, 4.0, 6.0, 8.0]
    before = plan_cache_stats()["misses"]
    scaler.k = 10.0
    assert rg(prog, 4, backend="plan") == [10.0, 20.0, 30.0, 40.0]
    assert plan_cache_stats()["misses"] == before + 1


def test_unstable_repr_fields_do_not_collide_or_alias():
    """Field values with default (address-bearing) reprs take the
    identity-pin path; values with truncating reprs (dicts of large
    arrays) are content-hashed, so near-identical graphs no longer
    collide on a '...'-elided repr."""
    import repro.apps.fir as fir_app

    def with_field(value):
        prog = fir_app.build(taps=8)
        from repro.graph.streams import Filter, walk
        filt = next(s for s in walk(prog)
                    if isinstance(s, Filter) and "h" in s.fields)
        filt.fields["tag"] = value
        return prog

    big_a = {"w": np.arange(5000.0)}
    big_b = {"w": np.arange(5000.0)}
    big_b["w"][4321] += 1e-9  # invisible to repr's truncation
    assert stream_fingerprint(with_field(big_a)) != \
        stream_fingerprint(with_field(big_b))
    assert stream_fingerprint(with_field({"w": np.arange(5000.0)})) == \
        stream_fingerprint(with_field({"w": np.arange(5000.0)}))
    # unknown objects: identity-pinned — stable for the same object,
    # distinct for different live objects even when their reprs collide
    obj, o1, o2 = object(), object(), object()
    assert stream_fingerprint(with_field(obj)) == \
        stream_fingerprint(with_field(obj))
    assert stream_fingerprint(with_field(o1)) != \
        stream_fingerprint(with_field(o2))


def test_fingerprint_sensitive_to_structure_and_values():
    base = stream_fingerprint(fir.build(taps=16))
    assert stream_fingerprint(fir.build(taps=16)) == base
    assert stream_fingerprint(fir.build(taps=17)) != base
    mutated = fir.build(taps=16)
    from repro.graph.streams import Filter, walk
    filt = next(s for s in walk(mutated)
                if isinstance(s, Filter) and "h" in s.fields)
    filt.fields["h"][3] *= 2.0
    assert stream_fingerprint(mutated) != base


def test_feedback_island_plans_cached_and_delay_sensitive():
    """Island plans participate in caching; the fingerprint covers the
    loop's delay (enqueued length) and the enqueued values themselves."""
    from repro.apps import echo
    from repro.graph import FeedbackLoop, RoundRobin

    program = echo.build(delay=8, taps=8)
    first = run_graph(program, 40, backend="plan")
    again = run_graph(program, 40, backend="plan")
    assert again == first
    assert plan_cache_stats()["hits"] == 1

    assert stream_fingerprint(echo.echo_loop(delay=4)) == \
        stream_fingerprint(echo.echo_loop(delay=4))
    assert stream_fingerprint(echo.echo_loop(delay=5)) != \
        stream_fingerprint(echo.echo_loop(delay=4))
    primed = FeedbackLoop(
        body=echo.echo_add(), loop=echo.echo_damp(echo.DEFAULT_GAIN),
        joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
        enqueued=[0.5] * 4, name="EchoLoop")
    assert stream_fingerprint(primed) != \
        stream_fingerprint(echo.echo_loop(delay=4))


# ---------------------------------------------------------------------------
# Cache mechanics
# ---------------------------------------------------------------------------


def test_lru_eviction_bounds_entries():
    cache = PlanCache(max_entries=2)
    for taps in (8, 12, 16):
        cache.entry_for(fir.build(taps=taps), "none")
    assert len(cache) == 2
    # taps=8 was evicted; re-requesting it is a miss
    cache.entry_for(fir.build(taps=8), "none")
    assert cache.misses == 4 and cache.hits == 0


def test_cache_false_bypasses_cache():
    program = fir.build(taps=16)
    a = plan_executor_for(program, cache=False).run(64)
    b = plan_executor_for(program, cache=False).run(64)
    assert a == b
    assert plan_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_profilers_not_shared_between_cached_runs():
    """Cached artifacts are immutable; each run profiles independently."""
    program = fir.build(taps=16)
    p1, p2 = Profiler(), Profiler()
    run_graph(program, 64, p1, backend="plan")
    run_graph(program, 64, p2, backend="plan")
    assert p1.counts.flops == p2.counts.flops > 0
