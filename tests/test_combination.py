"""Pipeline and splitjoin combination tests, validated on the thesis'
worked examples (Figures 3-4 and 3-6) and on random-node equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CombinationError
from repro.graph import Duplicate, RoundRobin
from repro.linear import (LinearNode, combine_duplicate_splitjoin,
                          combine_pipeline, combine_pipeline_pair,
                          combine_splitjoin, decimator_node,
                          roundrobin_to_duplicate)


def test_figure_3_4_pipeline_combination():
    """Two FIR filters: A1=[1;2] (e=2), A2=[3;4;5] (e=3) => e=4 combined."""
    n1 = LinearNode.from_coefficients([[1.0, 2.0]], [0.0], pop=1)
    n2 = LinearNode.from_coefficients([[3.0, 4.0, 5.0]], [0.0], pop=1)
    combined = combine_pipeline_pair(n1, n2)
    assert (combined.peek, combined.pop, combined.push) == (4, 1, 1)
    # Verify against brute-force composition on a random input stream.
    rng = np.random.default_rng(0)
    x = rng.normal(size=16)
    mid = n1.reference_run(x, firings=15)
    expected = n2.reference_run(mid, firings=10)
    got = combined.reference_run(x, firings=10)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_pipeline_combination_composes_offsets():
    n1 = LinearNode.from_coefficients([[2.0]], [3.0], pop=1)   # y = 2x + 3
    n2 = LinearNode.from_coefficients([[5.0]], [-1.0], pop=1)  # z = 5y - 1
    combined = combine_pipeline_pair(n1, n2)
    # z = 10x + 14
    np.testing.assert_allclose(combined.apply(np.array([7.0])), [84.0])


def test_pipeline_combination_with_rate_mismatch():
    """u1=2 vs o2=3 forces expansion to chanPop=lcm(2,3)=6."""
    n1 = LinearNode.from_coefficients(
        [[1.0, 1.0], [2.0, 0.0]], [0.0, 0.0], pop=1)  # push 2 per pop 1
    n2 = LinearNode.from_coefficients([[1.0, 1.0, 1.0]], [0.0], pop=3)
    combined = combine_pipeline_pair(n1, n2)
    assert combined.push == 2  # 6 channel items / o2=3 * u2=1 = 2
    rng = np.random.default_rng(1)
    x = rng.normal(size=20)
    mid = n1.reference_run(x, firings=12)
    expected = n2.reference_run(mid, firings=6)
    got = combined.reference_run(x, firings=3)
    np.testing.assert_allclose(got, expected[:len(got)], atol=1e-12)


def test_pipeline_combination_with_downstream_peeking():
    """Downstream peeks (e2 > o2): upstream must regenerate overlap."""
    n1 = LinearNode.from_coefficients([[1.0, -1.0]], [0.0], pop=1)
    n2 = LinearNode.from_coefficients([[1.0, 2.0, 3.0, 4.0]], [0.0], pop=1)
    combined = combine_pipeline_pair(n1, n2)
    rng = np.random.default_rng(2)
    x = rng.normal(size=30)
    mid = n1.reference_run(x, firings=29)
    expected = n2.reference_run(mid, firings=20)
    got = combined.reference_run(x, firings=20)
    np.testing.assert_allclose(got, expected, atol=1e-12)


def test_combine_pipeline_many():
    nodes = [LinearNode.from_coefficients([[1.0, 1.0]], [0.0], pop=1)
             for _ in range(4)]
    combined = combine_pipeline(nodes)
    assert combined.peek == 5  # binomial smoothing depth
    # coefficients are binomial(4, k)
    window = np.eye(5)
    outs = [combined.apply(w)[0] for w in window]
    np.testing.assert_allclose(outs, [1, 4, 6, 4, 1])


def test_combine_pipeline_empty_fails():
    with pytest.raises(CombinationError):
        combine_pipeline([])


def test_figure_3_6_splitjoin_combination():
    """Duplicate splitjoin, children u=4 and u=1, joiner roundrobin(2,1)."""
    A1 = np.array([[1.0, 2.0, 3.0, 4.0],
                   [5.0, 6.0, 7.0, 8.0]])
    n1 = LinearNode(A1, np.zeros(4), 2, 2, 4)
    n2 = LinearNode(np.array([[9.0]]), np.array([10.0]), 1, 1, 1)
    combined = combine_duplicate_splitjoin([n1, n2], [2, 1])
    expected_A = np.array([
        [9.0, 1.0, 2.0, 0.0, 3.0, 4.0],
        [0.0, 5.0, 6.0, 9.0, 7.0, 8.0],
    ])
    np.testing.assert_array_equal(combined.A, expected_A)
    np.testing.assert_array_equal(combined.b,
                                  [10.0, 0.0, 0.0, 10.0, 0.0, 0.0])
    assert (combined.peek, combined.pop, combined.push) == (2, 2, 6)


def _run_duplicate_splitjoin(children, weights, inputs, cycles):
    """Oracle: simulate a duplicate splitjoin + roundrobin joiner."""
    outs = [list() for _ in children]
    for k, child in enumerate(children):
        firings = (len(inputs) - (child.peek - child.pop)) // child.pop
        outs[k] = list(child.reference_run(inputs, firings))
    result = []
    positions = [0] * len(children)
    for _ in range(cycles):
        for k, w in enumerate(weights):
            result.extend(outs[k][positions[k]:positions[k] + w])
            positions[k] += w
    return np.array(result)


def test_duplicate_splitjoin_equivalence_mismatched_rates():
    """Rates (o=3,u=2,w=2) vs (o=1,u=1,w=3): reps 1 and 3, equal pops."""
    n1 = LinearNode.from_coefficients(
        [[1.0, 2.0, 0.0], [0.5, 0.0, 1.0]], [0.0, 1.0], pop=3)
    n2 = LinearNode.from_coefficients([[3.0, 0.0, -1.0]], [0.5], pop=1)
    combined = combine_duplicate_splitjoin([n1, n2], [2, 3])
    rng = np.random.default_rng(3)
    x = rng.normal(size=40)
    firings = 4
    got = combined.reference_run(x, firings=firings)
    expected = _run_duplicate_splitjoin(
        [n1, n2], [2, 3], x, cycles=firings * combined.push // 5)
    np.testing.assert_allclose(got, expected[:len(got)], atol=1e-12)


def test_duplicate_splitjoin_rejects_inconsistent_pops():
    n1 = LinearNode.from_coefficients([[1.0]], [0.0], pop=1)  # o=1, u=1
    n2 = LinearNode.from_coefficients([[1.0, 1.0]], [0.0], pop=2)  # o=2, u=1
    with pytest.raises(CombinationError):
        combine_duplicate_splitjoin([n1, n2], [1, 1])


def test_decimator_node_structure():
    """Transformation 4's decimator: keep branch k's segment of each cycle."""
    dec = decimator_node([2, 1], k=0)
    assert (dec.peek, dec.pop, dec.push) == (3, 3, 2)
    np.testing.assert_allclose(dec.apply(np.array([10.0, 20.0, 30.0])),
                               [10.0, 20.0])
    dec1 = decimator_node([2, 1], k=1)
    np.testing.assert_allclose(dec1.apply(np.array([10.0, 20.0, 30.0])),
                               [30.0])


def test_roundrobin_splitjoin_equivalence():
    """rr(1,1) split, identity children, rr(1,1) join == identity overall."""
    ident = LinearNode.from_coefficients([[1.0]], [0.0], pop=1)
    combined = combine_splitjoin(
        RoundRobin((1, 1)), [ident, ident], RoundRobin((1, 1)))
    x = np.arange(10, dtype=float)
    firings = 10 // combined.pop
    got = combined.reference_run(x, firings=firings)
    np.testing.assert_allclose(got, x[:len(got)])


def test_roundrobin_splitjoin_swap():
    """rr(1,1) split + rr joiner reading right child first swaps pairs."""
    ident = LinearNode.from_coefficients([[1.0]], [0.0], pop=1)
    neg = LinearNode.from_coefficients([[-1.0]], [0.0], pop=1)
    combined = combine_splitjoin(
        RoundRobin((1, 1)), [ident, neg], RoundRobin((1, 1)))
    got = combined.reference_run(np.array([1.0, 2.0, 3.0, 4.0]), firings=2)
    np.testing.assert_allclose(got, [1.0, -2.0, 3.0, -4.0])


def test_duplicate_splitjoin_three_children():
    a = LinearNode.from_coefficients([[1.0]], [0.0], pop=1)
    b = LinearNode.from_coefficients([[2.0]], [0.0], pop=1)
    c = LinearNode.from_coefficients([[3.0]], [0.0], pop=1)
    combined = combine_splitjoin(Duplicate(), [a, b, c],
                                 RoundRobin((1, 1, 1)))
    got = combined.reference_run(np.array([5.0, 7.0]), firings=2)
    np.testing.assert_allclose(got, [5, 10, 15, 7, 14, 21])


@settings(max_examples=40, deadline=None)
@given(
    e1=st.integers(1, 4), u1=st.integers(1, 3),
    e2=st.integers(1, 4), o2=st.integers(1, 3), u2=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_property_pipeline_combination_equivalence(e1, u1, e2, o2, u2, seed):
    """pipeline(Λ1, Λ2) computes exactly the composed stream function."""
    rng = np.random.default_rng(seed)
    o1 = 1
    e1 = max(e1, o1)
    e2 = max(e2, o2)
    n1 = LinearNode(rng.integers(-2, 3, (e1, u1)).astype(float),
                    rng.integers(-1, 2, u1).astype(float), e1, o1, u1)
    n2 = LinearNode(rng.integers(-2, 3, (e2, u2)).astype(float),
                    rng.integers(-1, 2, u2).astype(float), e2, o2, u2)
    combined = combine_pipeline_pair(n1, n2)
    x = rng.normal(size=combined.peek + 3 * combined.pop)
    firings = 3
    mid_firings = (len(x) - (n1.peek - n1.pop)) // n1.pop
    mid = n1.reference_run(x, firings=mid_firings)
    out_firings = (len(mid) - (n2.peek - n2.pop)) // n2.pop
    expected = n2.reference_run(mid, firings=out_firings)
    got = combined.reference_run(x, firings=firings)
    n = min(len(got), len(expected))
    np.testing.assert_allclose(got[:n], expected[:n], atol=1e-9)


# ---------------------------------------------------------------------------
# In-loop combination: rate-preserving pipeline runs collapse inside
# feedback cycles; lookahead-bearing runs do not
# ---------------------------------------------------------------------------


def _mix2(name, a, b, c, d):
    from repro.ir import FilterBuilder

    f = FilterBuilder(name, peek=2, pop=2, push=2)
    with f.work():
        x = f.local("x", f.pop_expr())
        y = f.local("y", f.pop_expr())
        f.push(a * x + b * y)
        f.push(c * x + d * y)
    return f.build()


def _damp(gain=0.5):
    from repro.ir import FilterBuilder

    f = FilterBuilder("damp", peek=1, pop=1, push=1)
    g = f.const("g", gain)
    with f.work():
        f.push(g * f.pop_expr())
    return f.build()


def _loop_with_body(body):
    from repro.graph.streams import FeedbackLoop, RoundRobin

    return FeedbackLoop(body=body, loop=_damp(),
                        joiner=RoundRobin((1, 1)),
                        splitter=RoundRobin((1, 1)),
                        enqueued=[0.0, 0.0], name="fb")


def test_rate_preserving_chain_collapses_inside_feedback():
    """peek==pop children with matching rates combine into one leaf even
    inside a cycle — the collapsed unit demands no extra buffered input,
    so the delay budget is untouched."""
    from repro.graph.streams import Pipeline, walk
    from repro.linear import LinearFilter, maximal_linear_replacement
    from repro.runtime import run_stream
    from repro.selection import select_optimizations

    def make():
        return _loop_with_body(Pipeline(
            [_mix2("m1", .1, .2, .3, .4), _mix2("m2", .5, -.1, .2, .3)],
            name="chain"))

    replaced = maximal_linear_replacement(make())
    assert isinstance(replaced.body, LinearFilter)
    selected = select_optimizations(make()).stream
    assert isinstance(selected.body, LinearFilter)
    inputs = [float(i % 5) for i in range(40)]
    base = run_stream(make(), inputs, 20)
    for rewritten in (maximal_linear_replacement(make()),
                      select_optimizations(make()).stream):
        got = run_stream(rewritten, inputs, 20)
        np.testing.assert_allclose(got, base, atol=1e-9)


def test_lookahead_chain_stays_uncollapsed_inside_feedback():
    """A peeking child (peek > pop) makes the combined unit demand more
    buffered input than the original — collapsing it inside a cycle
    could deadlock, so it must not happen."""
    from repro.graph.streams import Pipeline
    from repro.ir import FilterBuilder
    from repro.linear import LinearFilter, maximal_linear_replacement

    f = FilterBuilder("peeker", peek=3, pop=2, push=2)
    with f.work():
        f.push(f.peek(0) + 0.5 * f.peek(2))
        f.push(f.peek(1))
        f.pop()
        f.pop()
    body = Pipeline([f.build(), _mix2("m", .1, .2, .3, .4)],
                    name="peek-chain")
    replaced = maximal_linear_replacement(_loop_with_body(body))
    # leaves are individually replaced, but the run is not combined
    assert not isinstance(replaced.body, LinearFilter)
    assert all(isinstance(c, LinearFilter)
               for c in replaced.body.children)
