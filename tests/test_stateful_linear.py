"""State-space linear analysis (§7.1): extraction, batching, parity.

The acceptance bar mirrors the stateless engine's: a stateful-linear
filter must produce identical values (to 1e-9) and identical FLOP
profiles under ``interp``, ``compiled``, and ``plan``, whether it runs
as the written IR, as an auto-extracted lifted kernel, or as a collapsed
:class:`~repro.linear.state.StatefulLinearFilter`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.exec import RingBuffer, plan_report
from repro.exec.cache import stream_fingerprint
from repro.graph import (Duplicate, Pipeline, RoundRobin, SplitJoin,
                         steady_state)
from repro.ir import FilterBuilder
from repro.linear import (LinearFilter, LinearNode, StatefulLinearFilter,
                          extract_filter, extract_stateful_filter)
from repro.linear.combine import analyze
from repro.linear.state import (combine_stateful_pipeline, expand_stateful,
                                from_difference_equation,
                                stateful_cost_counts)
from repro.profiling import CATEGORIES, Profiler
from repro.runtime import Channel, run_stream
from repro.selection import select_optimizations

BACKENDS = ("interp", "compiled", "plan")


def biquad(b0, b1, b2, a1, a2, name="Biquad"):
    """Direct-form II transposed second-order section as IR."""
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    cb0 = f.const("b0", b0)
    cb1 = f.const("b1", b1)
    cb2 = f.const("b2", b2)
    ca1 = f.const("a1", a1)
    ca2 = f.const("a2", a2)
    s1 = f.state("s1", 0.0)
    s2 = f.state("s2", 0.0)
    with f.work():
        x = f.local("x", f.pop_expr())
        y = f.local("y", cb0 * x + s1)
        f.assign(s1, cb1 * x + ca1 * y + s2)
        f.assign(s2, cb2 * x + ca2 * y)
        f.push(y)
    return f.build()


def assert_backends_agree(stream_builder, inputs, n_outputs,
                          check_flops=True):
    """Differential harness: interp vs compiled vs plan to 1e-9."""
    results, profilers = {}, {}
    for backend in BACKENDS:
        p = Profiler()
        results[backend] = run_stream(stream_builder(), list(inputs),
                                      n_outputs, p, backend=backend)
        profilers[backend] = p
    for backend in ("compiled", "plan"):
        np.testing.assert_allclose(results[backend], results["interp"],
                                   atol=1e-9, rtol=1e-9,
                                   err_msg=backend)
        if check_flops:
            for cat in CATEGORIES:
                assert getattr(profilers[backend].counts, cat) == \
                    getattr(profilers["interp"].counts, cat), \
                    f"{backend}: {cat} differs"
    return results["interp"]


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


class TestStatefulExtraction:
    def test_biquad_extracts_to_difference_equation_node(self):
        b, a = [0.2, 0.3, 0.1], [0.4, -0.25]
        res = extract_stateful_filter(biquad(*b, *a))
        assert res.is_linear and res.node.state_dim == 2
        rng = np.random.default_rng(0)
        x = rng.normal(size=48)
        np.testing.assert_allclose(
            res.node.simulate(x, 48),
            from_difference_equation(b, a).simulate(x, 48), atol=1e-12)

    def test_state_array_fields_extract(self):
        g = FilterBuilder("DelayMix", peek=1, pop=1, push=1)
        d = g.state_array("d", [0.0, 0.0])
        with g.work():
            x = g.local("x", g.pop_expr())
            g.push(x + 0.5 * d[1])
            g.assign(d[1], d[0])
            g.assign(d[0], x)
        res = extract_stateful_filter(g.build())
        assert res.is_linear and res.node.state_dim == 2
        np.testing.assert_allclose(res.node.Cs, [[0, 1], [0, 0]])

    def test_nonlinear_state_update_refused(self):
        f = FilterBuilder("NL", peek=1, pop=1, push=1)
        s = f.state("s", 1.0)
        with f.work():
            x = f.local("x", f.pop_expr())
            f.push(x + s)
            f.assign(s, s * x)
        res = extract_stateful_filter(f.build())
        assert not res.is_linear and "not an affine" in res.reason

    def test_nonzero_initial_state_becomes_s0(self):
        f = FilterBuilder("Leaky", peek=1, pop=1, push=1)
        s = f.state("acc", 3.5)
        with f.work():
            f.assign(s, 0.5 * s + f.pop_expr())
            f.push(s)
        res = extract_stateful_filter(f.build())
        assert res.is_linear
        np.testing.assert_allclose(res.node.s0, [3.5])

    def test_stateless_filter_embeds_with_empty_state(self):
        f = FilterBuilder("Gain", peek=1, pop=1, push=1)
        with f.work():
            f.push(2.0 * f.pop_expr())
        res = extract_stateful_filter(f.build())
        assert res.is_linear and res.node.state_dim == 0


class TestPreworkGate:
    """Satellite fix: pure peek-prologue prework no longer blocks
    extraction; only prework that mutates fields (or shifts rates) does,
    with an accurate reason either way."""

    def _peek_prologue_filter(self):
        f = FilterBuilder("Peeky", peek=3, pop=1, push=1)
        h = f.const_array("h", [1.0, -1.0, 0.5])
        with f.prework(peek=3, pop=0, push=0):
            pass
        with f.work():
            s = f.local("s", 0.0)
            with f.loop("i", 0, 3) as i:
                f.assign(s, s + h[i] * f.peek(i))
            f.push(s)
            f.pop()
        return f.build()

    def test_pure_peek_prologue_extracts(self):
        res = extract_filter(self._peek_prologue_filter())
        assert res.is_linear
        assert res.node.peek == 3 and res.node.pop == 1

    def test_mutating_prework_refused_with_reason(self):
        f = FilterBuilder("MutPre", peek=1, pop=1, push=1)
        g = f.state("gain", 1.0)
        with f.prework(peek=1, pop=0, push=0):
            f.assign(g, 2.0)
        with f.work():
            f.push(g * f.pop_expr())
        for res in (extract_filter(f.build()),
                    extract_stateful_filter(f.build())):
            assert not res.is_linear
            assert "prework mutates state fields: gain" in res.reason

    def test_rate_shifting_prework_refused_with_reason(self):
        f = FilterBuilder("Delay", peek=1, pop=1, push=1)
        with f.prework(peek=0, pop=0, push=1):
            f.push(0.0)
        with f.work():
            f.push(f.pop_expr())
        res = extract_filter(f.build())
        assert not res.is_linear
        assert "prework pops or pushes" in res.reason


# ---------------------------------------------------------------------------
# Exact FLOP accounting (satellite fix)
# ---------------------------------------------------------------------------


class TestStatefulCounts:
    def test_fadd_no_longer_mirrors_fmul(self):
        """Regression vs the old ``fadd = fmul`` shortcut: a 4-term row
        with a bias needs 4 adds for 4 muls; a 1-term row needs none."""
        filt = self._dense_form_filter()
        c = stateful_cost_counts(extract_stateful_filter(filt).node)
        # y: 4 terms + bias -> 4 muls, 4 adds; s1': 2 terms -> 2 muls,
        # 1 add; s2': 1 term -> 1 mul, 0 adds
        assert (c.fmul, c.fadd) == (7, 5)

    def test_counts_match_interp_ground_truth(self):
        """The primitive's claimed counts equal the interp profile of an
        IR filter written in the same dense form — the convention
        :func:`~repro.linear.matmul.direct_cost_counts` uses for
        stateless leaves (one mul per nonzero term, one add per term
        beyond the first, one add per nonzero bias)."""
        filt = self._dense_form_filter()
        node = extract_stateful_filter(filt).node
        p_ir, p_leaf = Profiler(), Profiler()
        run_stream(filt, [1.0] * 20, 16, p_ir, backend="interp")
        run_stream(StatefulLinearFilter(node), [1.0] * 20, 16, p_leaf,
                   backend="interp")
        assert p_ir.counts.fmul == p_leaf.counts.fmul
        assert p_ir.counts.fadd == p_leaf.counts.fadd
        c = stateful_cost_counts(node)
        assert p_leaf.counts.fmul == 16 * c.fmul
        assert p_leaf.counts.fadd == 16 * c.fadd

    @staticmethod
    def _dense_form_filter():
        """States written directly in state-space (dense) form, with
        non-unit coefficients so no terms fold away on extraction."""
        f = FilterBuilder("Dense", peek=2, pop=1, push=1)
        s1 = f.state("s1", 0.1)
        s2 = f.state("s2", 0.2)
        with f.work():
            f.push(0.5 * f.peek(0) + 0.25 * f.peek(1)
                   + 2.0 * s1 + 3.0 * s2 + 1.5)
            t = f.local("t", 0.3 * f.peek(0) + 0.7 * s2)
            f.assign(s2, 0.9 * s1)
            f.assign(s1, t)
            f.pop()
        return f.build()


# ---------------------------------------------------------------------------
# Differential: randomized stateful-linear bodies across all backends
# ---------------------------------------------------------------------------


def random_stateful_primitive(rng, k, e, u):
    """A random (stable-ish) StatefulLinearNode as a runtime leaf."""
    from repro.linear.state import StatefulLinearNode

    Cs = rng.uniform(-0.4, 0.4, size=(k, k)) / max(k, 1)
    node = StatefulLinearNode(
        Ax=rng.uniform(-1, 1, size=(e, u)),
        As=rng.uniform(-1, 1, size=(k, u)),
        bx=rng.uniform(-1, 1, size=u),
        Cx=rng.uniform(-0.5, 0.5, size=(e, k)),
        Cs=Cs,
        bs=rng.uniform(-0.2, 0.2, size=k),
        s0=rng.uniform(-1, 1, size=k),
        peek=e, pop=e, push=u)
    return StatefulLinearFilter(node, name=f"Rand[{k},{e},{u}]")


class TestDifferentialRandomized:
    @settings(max_examples=12, deadline=None)
    @given(k=st.integers(0, 4), e=st.integers(1, 3), u=st.integers(1, 3),
           seed=st.integers(0, 10_000))
    def test_random_matrix_shapes(self, k, e, u, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.normal(size=600).tolist()
        n = 500 // max(1, (600 // (e * 120))) if e > 1 else 120
        n = min(120, (600 - e) // e * u)
        assert_backends_agree(
            lambda: random_stateful_primitive(
                np.random.default_rng(seed), k, e, u),
            inputs, max(4, n))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), chain=st.integers(1, 3))
    def test_random_biquad_chains(self, seed, chain):
        rng = np.random.default_rng(seed)
        sections = [
            (rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1),
             rng.uniform(-0.4, 0.4), rng.uniform(-0.25, 0.25))
            for _ in range(chain)]

        def build():
            return Pipeline([biquad(*s, name=f"B{i}")
                             for i, s in enumerate(sections)])

        inputs = np.random.default_rng(seed + 1).normal(size=400).tolist()
        assert_backends_agree(build, inputs, 300)

    def test_stateful_inside_splitjoin(self):
        def build():
            return SplitJoin(
                Duplicate(),
                [biquad(0.2, 0.3, 0.1, 0.4, -0.25, "Wet"),
                 LinearFilter(LinearNode.from_coefficients(
                     [[0.7]], [0.0], pop=1), name="Dry")],
                RoundRobin((1, 1)), name="WetDry")

        rng = np.random.default_rng(5)
        assert_backends_agree(build, rng.normal(size=300).tolist(), 400)

    def test_stateful_inside_feedback_island(self):
        """A stateful-linear loop body runs through its lifted kernel
        inside the feedback island, value-identical to interp."""
        from repro.graph import FeedbackLoop

        def build():
            g = FilterBuilder("LeakyAddDup", peek=2, pop=2, push=2)
            s = g.state("acc", 0.0)
            with g.work():
                t = g.local("t", g.pop_expr() + 0.5 * g.pop_expr()
                            + 0.1 * s)
                g.assign(s, 0.5 * t)
                g.push(t)
                g.push(t)
            f = FilterBuilder("Fwd", peek=1, pop=1, push=1)
            with f.work():
                f.push(f.pop_expr())
            return FeedbackLoop(body=g.build(), loop=f.build(),
                                joiner=RoundRobin((1, 1)),
                                splitter=RoundRobin((1, 1)),
                                enqueued=[0.0] * 8)

        rng = np.random.default_rng(11)
        ins = rng.normal(size=300).tolist()
        ri = run_stream(build(), ins, 250, backend="interp")
        rp = run_stream(build(), ins, 250, backend="plan")
        np.testing.assert_allclose(rp, ri, atol=1e-9)
        from repro.runtime import Collector, ListSource
        rep = plan_report(Pipeline([ListSource(ins), build(), Collector()]))
        kinds = {s.name: s.step_kind
                 for isl in rep.islands for s in isl.steps}
        assert kinds["LeakyAddDup"] == "stateful"

    def test_stateful_chain_collapses_under_optimize(self):
        """optimize="linear" collapses the cascade into ONE stateful
        leaf; values still match the unoptimized run."""
        sections = [(0.2, 0.3, 0.1, 0.4, -0.25),
                    (0.5, -0.2, 0.05, 0.3, -0.1)]

        def build():
            return Pipeline([biquad(*s, name=f"B{i}")
                             for i, s in enumerate(sections)])

        rng = np.random.default_rng(6)
        inputs = rng.normal(size=400).tolist()
        base = run_stream(build(), inputs, 300)
        for backend in BACKENDS:
            got = run_stream(build(), inputs, 300, backend=backend,
                             optimize="linear")
            np.testing.assert_allclose(got, base, atol=1e-9, rtol=1e-9)
        from repro.linear import maximal_linear_replacement
        collapsed = maximal_linear_replacement(build(), stateful=True)
        assert isinstance(collapsed, StatefulLinearFilter)
        assert collapsed.stateful_node.state_dim == 4

    def test_selection_dp_prices_stateful_leaves(self):
        pipe = Pipeline([biquad(0.2, 0.3, 0.1, 0.4, -0.25, "B0"),
                         biquad(0.5, -0.2, 0.05, 0.3, -0.1, "B1")])
        for model in ("thesis", "batched"):
            result = select_optimizations(pipe, cost_model=model,
                                          stateful=True)
            assert result.cost > 0  # stateful leaves are no longer free
            rng = np.random.default_rng(7)
            inputs = rng.normal(size=200).tolist()
            np.testing.assert_allclose(
                run_stream(result.stream, inputs, 150),
                run_stream(pipe, inputs, 150), atol=1e-9, rtol=1e-9)

    def test_selection_dp_default_keeps_thesis_semantics(self):
        """The paper's autosel configuration (stateful=False default)
        leaves stateful filters untouched, like the thesis."""
        pipe = Pipeline([biquad(0.2, 0.3, 0.1, 0.4, -0.25, "B0")])
        result = select_optimizations(pipe)
        assert not isinstance(result.stream, StatefulLinearFilter)
        assert result.cost == 0.0  # non-linear leaves are free under NONE


# ---------------------------------------------------------------------------
# The lifted kernel under plan-backend mechanics
# ---------------------------------------------------------------------------


class TestStatefulPlanMechanics:
    def test_chunked_runs_preserve_state(self):
        """Chunk flushes smaller than the lift block and repeated
        executes must thread the state carry exactly."""
        from repro.exec import PlanExecutor
        from repro.runtime import Collector, ListSource
        from repro.runtime.executor import FlatGraph

        rng = np.random.default_rng(8)
        inputs = rng.normal(size=600).tolist()
        prog = Pipeline([ListSource(inputs),
                         biquad(0.2, 0.3, 0.1, 0.4, -0.25),
                         Collector()])
        expected = run_stream(biquad(0.2, 0.3, 0.1, 0.4, -0.25),
                              inputs, 500, backend="interp")
        flat = FlatGraph(prog, Profiler(), backend="compiled")
        ex = PlanExecutor(flat, chunk_outputs=16)
        np.testing.assert_allclose(ex.run(500), expected, atol=1e-9)

    def test_plan_report_names_stateful_steps(self):
        from repro.runtime import Collector, ListSource

        prog = Pipeline([ListSource([0.0] * 64),
                         biquad(0.2, 0.3, 0.1, 0.4, -0.25),
                         Collector()])
        rep = plan_report(prog)
        kinds = {s.name: s.step_kind for s in rep.steps}
        assert kinds["Biquad"] == "stateful"
        assert not rep.fallbacks

    def test_stateful_leaf_fingerprints_by_content(self):
        node = extract_stateful_filter(
            biquad(0.2, 0.3, 0.1, 0.4, -0.25)).node
        f1 = stream_fingerprint(StatefulLinearFilter(node, name="S"))
        f2 = stream_fingerprint(StatefulLinearFilter(node, name="S"))
        assert f1 == f2
        other = extract_stateful_filter(
            biquad(0.21, 0.3, 0.1, 0.4, -0.25)).node
        assert stream_fingerprint(
            StatefulLinearFilter(other, name="S")) != f1

    def test_expand_stateful_matches_scalar_firings(self):
        node = from_difference_equation([0.3, 0.4], [0.25, -0.05])
        rng = np.random.default_rng(9)
        x = rng.normal(size=64)
        ref = node.simulate(x, 60)
        for b in (1, 3, 10):
            got = expand_stateful(node, b).simulate(x, 60 // b)
            np.testing.assert_allclose(got, ref[:(60 // b) * b], atol=1e-10)

    def test_combination_respects_rate_changes(self):
        up = from_difference_equation([1.0, 0.2], [0.3])
        down = extract_stateful_filter(self._decimating_mixer()).node
        combined = combine_stateful_pipeline(up, down)
        rng = np.random.default_rng(10)
        x = rng.normal(size=120)
        mid = up.simulate(x, 100)
        np.testing.assert_allclose(combined.simulate(x, 50),
                                   down.simulate(mid, 50), atol=1e-9)

    @staticmethod
    def _decimating_mixer():
        f = FilterBuilder("Mix2", peek=2, pop=2, push=1)
        s = f.state("s", 0.0)
        with f.work():
            a = f.local("a", f.pop_expr())
            b = f.local("b", f.pop_expr())
            f.push(a + 0.5 * b + s)
            f.assign(s, 0.25 * a)
        return f.build()


# ---------------------------------------------------------------------------
# IIR app acceptance
# ---------------------------------------------------------------------------


class TestIIRApp:
    def test_no_fallback_for_cascade_stages(self):
        from repro.apps import iir

        rep = plan_report(iir.build())
        stage_kinds = {s.name: s.step_kind for s in rep.steps
                       if s.name.startswith(("Biquad", "DCBlocker"))}
        assert stage_kinds and set(stage_kinds.values()) == {"stateful"}

    def test_app_differential_all_optimize_modes(self):
        from repro.apps import iir
        from repro.runtime import run_graph

        base = run_graph(iir.build(), 200, backend="interp")
        for backend in BACKENDS:
            for mode in ("none", "linear", "auto"):
                got = run_graph(iir.build(), 200, backend=backend,
                                optimize=mode)
                np.testing.assert_allclose(got, base, atol=1e-9, rtol=1e-9,
                                           err_msg=f"{backend}/{mode}")


# ---------------------------------------------------------------------------
# Scheduler regression (zero-weight splitjoin truncation)
# ---------------------------------------------------------------------------


def test_zero_weight_splitjoin_steady_state_is_integral():
    """Regression: a zero-weight roundrobin branch solved first used to
    zero out every fractional multiplicity (pop=0, Expander mult 0)."""
    def expander(k):
        f = FilterBuilder("Expander", peek=1, pop=1, push=k)
        with f.work():
            x = f.local("x", f.pop_expr())
            for _ in range(k):
                f.push(x)
        return f.build()

    def fir4():
        f = FilterBuilder("fir", peek=4, pop=1, push=1)
        with f.work():
            s = f.local("s", 0.0)
            for i in range(4):
                f.assign(s, s + f.peek(i))
            f.push(s)
            f.pop()
        return f.build()

    sj = SplitJoin(RoundRobin((0, 1)), [fir4(), expander(2)],
                   RoundRobin((0, 1)))
    ss = steady_state(sj)
    assert ss.pop == 1 and ss.push == 2
    assert ss.multiplicity(sj.children[1]) == 1  # the Expander fires
    assert ss.multiplicity(sj.children[0]) == 0  # dead branch stays dead
    assert all(isinstance(m, int) for m in ss.mult.values())


# ---------------------------------------------------------------------------
# RingBuffer scalar error parity with Channel (satellite)
# ---------------------------------------------------------------------------


class TestRingChannelErrorParity:
    """The compiled fallback runners execute over rings; scalar tape
    errors must match Channel's exactly (type and trigger condition)."""

    @pytest.mark.parametrize("make", [Channel, RingBuffer])
    def test_pop_from_empty_raises(self, make):
        ch = make("t")
        with pytest.raises(InterpError, match="pop from empty channel"):
            ch.pop()

    @pytest.mark.parametrize("make", [Channel, RingBuffer])
    def test_peek_bounds(self, make):
        ch = make("t")
        ch.push(1.0)
        ch.push(2.0)
        assert ch.peek(1) == 2.0
        with pytest.raises(InterpError, match="peek"):
            ch.peek(2)
        with pytest.raises(InterpError, match="peek"):
            ch.peek(-1)

    @pytest.mark.parametrize("make", [Channel, RingBuffer])
    def test_peek_after_pops_tracks_head(self, make):
        ch = make("t")
        for v in (1.0, 2.0, 3.0):
            ch.push(v)
        assert ch.pop() == 1.0
        assert ch.peek(0) == 2.0
        with pytest.raises(InterpError):
            ch.peek(2)

    @pytest.mark.parametrize("make", [Channel, RingBuffer])
    def test_block_ops_raise_identically(self, make):
        ch = make("t")
        ch.push_block([1.0, 2.0])
        with pytest.raises(InterpError, match="peek_block"):
            ch.peek_block(3)
        with pytest.raises(InterpError, match="pop_block"):
            ch.pop_block(3)
        with pytest.raises(InterpError, match="pop_block_array"):
            ch.pop_block_array(3)
