"""The concurrent streaming session server: ``repro.serve``.

The acceptance bar mirrors the session suite's: serving is
*observationally invisible* — outputs streamed through the server are
bitwise-identical to driving a local :class:`~repro.session.
StreamSession`, whether sessions run interleaved or sequentially, cold
or recycled from the pool.  On top of that sit the serving guarantees:
backpressure caps a misbehaving client's buffered input, timeouts retire
(poison) sessions instead of recycling them, TTL eviction unpins plan
entries, and every failure surfaces as a typed error frame, never a
dropped connection.
"""

import asyncio
import os
import tempfile
import threading

import numpy as np
import pytest

from repro.apps import BENCHMARKS, source_values, split_app
from repro.errors import ChunkDtypeError, ProtocolError
from repro.serve import (MetricsRegistry, ServeClient, ServeConfig,
                         SessionPool, StreamServer, parse_stats)
from repro.serve import protocol as P
from repro.session import StreamSession

BACKENDS = ("interp", "compiled", "plan")

FIR_PARAMS = {"taps": 32}

DSL_SCALE = """
float->float filter Scale {
    work push 1 pop 1 {
        push(2.5 * peek(0));
        pop();
    }
}
"""


def fir_inputs(n):
    source, _body = split_app(BENCHMARKS["FIR"](**FIR_PARAMS))
    return np.asarray(source_values(source, n), dtype=np.float64)


def direct_push_outputs(chunks, backend="plan"):
    _source, body = split_app(BENCHMARKS["FIR"](**FIR_PARAMS))
    session = StreamSession(body, backend=backend)
    out = [session.push(c) for c in chunks]
    session.close()
    return np.concatenate(out) if out else np.empty(0)


def serve_test(fn, config=None):
    """Run ``fn(server, path)`` against a fresh unix-socket server."""

    async def main():
        server = StreamServer(config=config)
        sockdir = tempfile.mkdtemp(prefix="repro-serve-test-")
        path = os.path.join(sockdir, "s")
        await server.start(path=path)
        try:
            return await fn(server, path)
        finally:
            await server.aclose()
            try:
                os.unlink(path)
                os.rmdir(sockdir)
            except OSError:
                pass

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_array_codec_roundtrip(self):
        arr = np.linspace(-3.0, 7.0, 41)
        back = P.decode_array(P.encode_array(arr))
        np.testing.assert_array_equal(arr, back)

    def test_ragged_payload_rejected(self):
        with pytest.raises(ProtocolError) as ei:
            P.decode_array(b"\x00" * 12)  # not a multiple of 8
        assert ei.value.code == "bad-request"

    def _reader(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_frame_clean_eof_is_none(self):
        async def main():
            return await P.read_frame(self._reader(b""))

        assert asyncio.run(main()) is None

    def test_read_frame_truncated_is_bad_frame(self):
        async def main():
            # header promises 100 payload bytes, stream ends early
            data = bytes([P.PUSH]) + (100).to_bytes(4, "big") + b"xy"
            return await P.read_frame(self._reader(data))

        with pytest.raises(ProtocolError) as ei:
            asyncio.run(main())
        assert ei.value.code == "bad-frame"

    def test_read_frame_oversized_is_too_large(self):
        async def main():
            data = (bytes([P.PUSH]) + (1 << 30).to_bytes(4, "big")
                    + (0).to_bytes(4, "big"))  # CRC slot of the header
            return await P.read_frame(self._reader(data),
                                      max_bytes=1 << 20)

        with pytest.raises(ProtocolError) as ei:
            asyncio.run(main())
        assert ei.value.code == "too-large"


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_highwater(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(2.5)
        g = m.gauge("g")
        g.inc(5)
        g.dec(3)
        snap = m.snapshot()
        assert snap["c"] == 3.5
        assert snap["g"] == 2 and snap["g.max"] == 5

    def test_histogram_quantiles(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for ms in range(1, 101):  # 1..100 ms, uniform
            h.observe(ms / 1e3)
        snap = m.snapshot()
        assert snap["lat.count"] == 100
        # geometric buckets: quantiles land within a bucket's width
        assert 0.035 < snap["lat.p50"] < 0.07
        assert 0.08 < snap["lat.p99"] < 0.13

    def test_render_parse_roundtrip(self):
        m = MetricsRegistry()
        m.counter("reqs").inc(7)
        parsed = parse_stats(m.render())
        assert parsed["reqs"] == 7.0


# ---------------------------------------------------------------------------
# Round-trip parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_served_push_matches_direct_session(backend):
    inputs = fir_inputs(600)
    chunks = [inputs[:250], inputs[250:251], inputs[251:600]]
    expected = direct_push_outputs(chunks, backend)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS,
                              backend=backend)
            got = [await client.push(c) for c in chunks]
            await client.close_session()
            return np.concatenate(got)

    np.testing.assert_array_equal(serve_test(scenario), expected)


def test_pipelined_push_stream_matches_sequential():
    inputs = fir_inputs(2048)
    chunks = [inputs[i:i + 256] for i in range(0, 2048, 256)]
    expected = direct_push_outputs(chunks)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)
            got = []
            latencies = []
            async for out in client.push_stream(chunks, window=4,
                                                latencies=latencies):
                got.append(out)
            assert len(latencies) == len(chunks)
            await client.close_session()
            return np.concatenate(got)

    np.testing.assert_array_equal(serve_test(scenario), expected)


def test_pull_mode_run_matches_run_graph():
    from repro.runtime import run_graph

    expected = np.asarray(run_graph(BENCHMARKS["FIR"](**FIR_PARAMS), 96,
                                    backend="plan", as_array=True))

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS, mode="pull")
            first = await client.run(40)
            rest = await client.run(56)
            return np.concatenate([first, rest])

    np.testing.assert_array_equal(serve_test(scenario), expected)


def test_dsl_open_serves_compiled_source():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(dsl=DSL_SCALE, top="Scale")
            return await client.push([1.0, 2.0, -4.0])

    np.testing.assert_array_equal(serve_test(scenario),
                                  [2.5, 5.0, -10.0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_sessions_match_sequential(backend):
    """N sessions advanced round-robin produce the same bytes as N run
    one after another — concurrent sessions share only immutable plan
    state."""
    inputs = fir_inputs(900)
    chunks = [inputs[:300], inputs[300:601], inputs[601:900]]
    sequential = [direct_push_outputs(chunks, backend) for _ in range(3)]

    async def scenario(server, path):
        clients = []
        for _ in range(3):
            c = await ServeClient.connect(path=path)
            await c.open(app="fir", params=FIR_PARAMS, backend=backend)
            clients.append(c)
        got = [[] for _ in clients]
        for chunk in chunks:  # interleave: chunk 0 to all, then chunk 1...
            for i, c in enumerate(clients):
                got[i].append(await c.push(chunk))
        for c in clients:
            await c.close()
        return [np.concatenate(g) for g in got]

    for served, direct in zip(serve_test(scenario), sequential):
        np.testing.assert_array_equal(served, direct)


# ---------------------------------------------------------------------------
# Pooling: recycle, plan seeding, eviction
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_recycles_released_sessions(backend):
    inputs = fir_inputs(400)
    expected = direct_push_outputs([inputs], backend)

    async def scenario(server, path):
        outs = []
        for _ in range(3):  # same connection: open, stream, release
            async with await ServeClient.connect(path=path) as client:
                await client.open(app="fir", params=FIR_PARAMS,
                                  backend=backend)
                outs.append(await client.push(inputs))
                await client.close_session()
        snap = server.stats_snapshot()
        assert snap["serve.sessions.compiled"] == 1
        assert snap["serve.sessions.recycled"] == 2
        assert server.pool.graph_stats()[0]["compiles"] == 1
        return outs

    for out in serve_test(scenario):
        np.testing.assert_array_equal(out, expected)


def test_concurrent_opens_share_one_plan_seed():
    """A cold stampede pays ONE full planning pass: the pool
    single-flights the first compile and donates its entry's extraction
    decisions to every concurrent sibling."""
    _source, body = split_app(BENCHMARKS["FIR"](**FIR_PARAMS))
    pool = SessionPool(max_idle_per_key=8)

    def factory(seed=None):
        return StreamSession(body, backend="plan", _plan_seed=seed)

    sessions = []
    lock = threading.Lock()

    def worker():
        ps = pool.acquire("k", factory, "fir")
        with lock:
            sessions.append(ps)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    entries = [ps.session.cache_entry for ps in sessions]
    assert all(e is not None for e in entries)
    # one extraction, shared by reference into every sibling entry
    first = entries[0].decisions
    assert all(e.decisions is first for e in entries)
    # seeded siblings still execute independently and identically
    inputs = fir_inputs(300)
    outs = [ps.session.push(inputs) for ps in sessions]
    for out in outs[1:]:
        np.testing.assert_array_equal(out, outs[0])
    pool.close_all()


def test_idle_ttl_eviction_unpins_plan_entries():
    from repro.exec import clear_plan_cache

    clear_plan_cache()
    program = BENCHMARKS["FIR"](**FIR_PARAMS)  # pull mode: shared entry
    pool = SessionPool(max_idle_per_key=4, idle_ttl=30.0)

    def factory(seed=None):
        return StreamSession(program, backend="plan", _plan_seed=seed)

    ps = pool.acquire("k", factory, "fir")
    entry = ps.session.cache_entry
    assert entry.pins == 1
    pool.release(ps)  # parked, still pinned
    assert entry.pins == 1 and pool.idle_count == 1
    assert pool.evict_idle(now=pool._clock() + 31.0) == 1
    assert entry.pins == 0 and pool.idle_count == 0
    assert ps.session.closed
    assert pool.metrics.counter("serve.sessions.evicted").value == 1


def test_pool_discards_overflow_and_poisoned():
    _source, body = split_app(BENCHMARKS["FIR"](**FIR_PARAMS))
    pool = SessionPool(max_idle_per_key=1)

    def factory(seed=None):
        return StreamSession(body, backend="plan", _plan_seed=seed)

    a = pool.acquire("k", factory, "fir")
    b = pool.acquire("k", factory, "fir")
    c = pool.acquire("k", factory, "fir")
    pool.release(a)
    pool.release(b)  # bucket full -> closed, not parked
    assert pool.idle_count == 1 and b.session.closed
    assert pool.metrics.counter("serve.sessions.discarded").value == 1
    c.poisoned = True
    pool.release(c)  # poisoned -> closed, never recycled
    assert pool.idle_count == 1 and c.session.closed
    assert pool.metrics.counter("serve.sessions.poisoned").value == 1
    pool.close_all()


# ---------------------------------------------------------------------------
# Robustness: backpressure, timeouts, error frames
# ---------------------------------------------------------------------------


def test_feed_backpressure_caps_server_memory():
    """A client that feeds without draining hits the pending-input cap
    as a typed error frame; the server's buffered-sample high-water
    mark stays bounded by the cap."""
    config = ServeConfig(max_pending_samples=500)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)
            await client.feed(np.zeros(400))  # under the cap: accepted
            with pytest.raises(ProtocolError) as ei:
                await client.feed(np.zeros(200))  # would cross the cap
            assert ei.value.code == "backpressure"
            # the connection and session survive the rejection: drain,
            # then the same feed is accepted
            await client.run(300)
            await client.feed(np.zeros(200))
            snap = server.stats_snapshot()
            assert snap["serve.pending_samples.max"] <= 500
            assert snap["serve.errors.backpressure"] == 1

    serve_test(scenario, config)


def test_request_timeout_returns_error_frame_and_retires_session():
    config = ServeConfig(request_timeout=0.05)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", mode="pull")
            # big enough to overrun the 50 ms budget by orders of
            # magnitude, small enough that the abandoned worker thread
            # (which runs to completion) finishes promptly at aclose()
            with pytest.raises(ProtocolError) as ei:
                await client.run(2_000_000)
            assert ei.value.code == "timeout"
            await client.close_session()  # poisoned -> closed, not parked
        # the worker thread may still be running the doomed request;
        # poisoning guarantees the session is never handed out again
        assert server.pool.idle_count == 0
        snap = server.stats_snapshot()
        assert snap["serve.errors.timeout"] == 1

    serve_test(scenario, config)


def test_error_frames_not_disconnects():
    """Every rejection is a typed ERR frame on a live connection."""

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            with pytest.raises(ProtocolError) as ei:
                await client.push([1.0])
            assert ei.value.code == "no-session"

            with pytest.raises(ProtocolError) as ei:
                await client.open(app="no-such-app")
            assert ei.value.code == "bad-request"

            with pytest.raises(ProtocolError) as ei:
                await client.open(app="fir", backend="vectorized")
            assert ei.value.code == "bad-option"

            with pytest.raises(ProtocolError) as ei:
                await client.open(app="fir", optimize="everything")
            assert ei.value.code == "bad-option"

            await client.open(app="fir", params=FIR_PARAMS)
            with pytest.raises(ProtocolError) as ei:
                await client.open(app="fir")  # second OPEN, same conn
            assert ei.value.code == "session-open"

            # raw ragged PUSH payload: length not a multiple of 8
            await P.write_frame(client._writer, P.PUSH, b"\x00" * 13)
            frame = await P.read_frame(client._reader)
            assert frame.kind == P.ERR
            assert frame.json()["code"] == "bad-request"

            # the connection is still serviceable after every error
            out = await client.push(fir_inputs(200))
            assert len(out) > 0

    serve_test(scenario)


def test_push_on_pull_session_is_bad_request():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS, mode="pull")
            with pytest.raises(ProtocolError) as ei:
                await client.push([1.0, 2.0])
            assert ei.value.code == "bad-request"
            assert "pull" in str(ei.value)

    serve_test(scenario)


def test_client_rejects_non_float_chunks_eagerly():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)
            with pytest.raises(ChunkDtypeError):
                await client.push(np.array([1 + 2j, 3j]))
            with pytest.raises(ChunkDtypeError):
                await client.push(np.array(["a", "b"]))

    serve_test(scenario)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_stats_command_reports_traffic_and_cache():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)
            await client.push(fir_inputs(256))
            await client.close_session()
            stats = parse_stats(await client.stats())
        assert stats["serve.sessions.compiled"] == 1
        assert stats["serve.chunks.in"] == 1
        assert stats["serve.samples.in"] == 256
        assert stats["serve.samples.out"] > 0
        assert stats["serve.latency.count"] >= 2
        assert "plan_cache.hits" in stats
        assert stats["graph.FIR/plan/none/push.compiles"] == 1
        assert stats["graph.FIR/plan/none/push.requests"] >= 1

    serve_test(scenario)


def test_reset_command_rewinds_served_session():
    inputs = fir_inputs(300)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)
            first = await client.push(inputs)
            await client.reset()
            again = await client.push(inputs)
            return first, again

    first, again = serve_test(scenario)
    np.testing.assert_array_equal(first, again)


def test_tcp_transport_roundtrip():
    async def main():
        server = StreamServer()
        host, port = await server.start(host="127.0.0.1", port=0)
        try:
            async with await ServeClient.connect(host, port) as client:
                await client.ping()
                await client.open(app="fir", params=FIR_PARAMS)
                return await client.push(fir_inputs(128))
        finally:
            await server.aclose()

    assert len(asyncio.run(main())) > 0
