"""Numeric-policy differential suite.

Every benchmark app runs under the float32 policy on all three backends
and must agree with the float64 interpreter reference at the policy's
documented tolerances (rtol=1e-4, atol=1e-5).  The linear apps
additionally run under the complex policies on the plan backend —
complex samples flow through the same extracted matmul/FFT kernels, so
real inputs must come back with a vanishing imaginary part.  Push
sessions, chunk dtype gating, and the dtype-keyed plan cache are
covered here too; the analytic-vs-calibrated cost model has its own
suite in ``test_calibration_cache.py``.
"""

import numpy as np
import pytest

import repro
from repro.apps import BENCHMARKS, source_values, split_app
from repro.errors import ChunkDtypeError
from repro.exec import clear_plan_cache, plan_cache_stats
from repro.numeric import POLICIES
from repro.runtime import run_graph
from test_apps import SMALL_PARAMS

BACKENDS = ("interp", "compiled", "plan")
APPS = sorted(SMALL_PARAMS)

#: Apps whose small configurations are linear end-to-end — the only
#: ones where complex samples are mathematically meaningful (nonlinear
#: constructs like clips and atan have no canonical complex extension).
LINEAR_APPS = ("FIR", "FilterBank")


def _n_out(name: str) -> int:
    return 16 if name == "Radar" else 32


def _build(name):
    return BENCHMARKS[name](**SMALL_PARAMS[name])


def _reference(name):
    """Float64 interpreter output: the suite's ground truth."""
    return np.asarray(run_graph(_build(name), _n_out(name),
                                backend="interp"), dtype=np.float64)


# ---------------------------------------------------------------------------
# Pull sessions: all apps x all backends under f32; linear apps complex
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", APPS)
def test_f32_matches_f64_reference(name, backend):
    policy = POLICIES["f32"]
    ref = _reference(name)
    with repro.compile(_build(name), backend=backend,
                       dtype="f32") as session:
        assert session.policy is policy
        out = session.run(_n_out(name))
    assert out.dtype == np.float32
    np.testing.assert_allclose(out.astype(np.float64), ref,
                               rtol=policy.rtol, atol=policy.atol,
                               err_msg=f"{name}/{backend} under f32")


@pytest.mark.parametrize("dtype", ("c64", "c128"))
@pytest.mark.parametrize("name", LINEAR_APPS)
def test_complex_policies_on_linear_apps(name, dtype):
    policy = POLICIES[dtype]
    ref = _reference(name)
    with repro.compile(_build(name), backend="plan",
                       dtype=dtype) as session:
        assert session.policy is policy
        out = session.run(_n_out(name))
    assert out.dtype == policy.dtype
    # real inputs through a linear program: the complex run reproduces
    # the real reference, imaginary part included (allclose compares
    # both components against ref + 0j)
    np.testing.assert_allclose(out.astype(np.complex128),
                               ref.astype(np.complex128),
                               rtol=policy.rtol, atol=policy.atol,
                               err_msg=f"{name} under {dtype}")


@pytest.mark.parametrize("name", LINEAR_APPS)
def test_f64_policy_is_bitwise_identical_to_default(name):
    """Spelling out the default must change nothing: dtype="f64" output
    is bit-for-bit the no-dtype output."""
    with repro.compile(_build(name), backend="plan") as plain:
        out_plain = plain.run(_n_out(name))
    with repro.compile(_build(name), backend="plan",
                       dtype="float64") as spelled:
        out_spelled = spelled.run(_n_out(name))
    np.testing.assert_array_equal(out_spelled, out_plain)


# ---------------------------------------------------------------------------
# Push sessions (the ISSUE acceptance path: FIR + FilterBank f32 e2e)
# ---------------------------------------------------------------------------


def _push_chunks(name, dtype, inputs):
    _source, body = split_app(_build(name))
    with repro.compile(body, backend="plan", dtype=dtype) as session:
        outs = [session.push(c) for c in np.array_split(inputs, 7)]
        out = np.concatenate([o for o in outs if len(o)])
    return out


@pytest.mark.parametrize("name", LINEAR_APPS)
def test_f32_push_session_parity(name):
    policy = POLICIES["f32"]
    source, _body = split_app(_build(name))
    inputs = np.asarray(source_values(source, 512))
    out64 = _push_chunks(name, None, inputs)
    out32 = _push_chunks(name, "f32", inputs)
    assert out32.dtype == np.float32 and out64.dtype == np.float64
    assert len(out32) == len(out64) > 0
    np.testing.assert_allclose(out32.astype(np.float64), out64,
                               rtol=policy.rtol, atol=policy.atol)


def test_complex_push_session():
    """A genuinely complex chunk through a complex-policy FIR: c64 must
    track c128 at the single-precision tolerances."""
    policy = POLICIES["c64"]
    rng = np.random.default_rng(7)
    inputs = (rng.standard_normal(512)
              + 1j * rng.standard_normal(512)).astype(np.complex128)
    narrow = _push_chunks("FIR", "c64", inputs)
    wide = _push_chunks("FIR", "c128", inputs)
    assert narrow.dtype == np.complex64 and wide.dtype == np.complex128
    assert len(narrow) == len(wide) > 0
    np.testing.assert_allclose(narrow.astype(np.complex128), wide,
                               rtol=policy.rtol, atol=policy.atol)


def test_chunk_dtype_gate_follows_the_policy():
    _source, body = split_app(_build("FIR"))
    with repro.compile(body, backend="plan", dtype="f32") as session:
        with pytest.raises(ChunkDtypeError):
            session.push(np.array([1 + 2j, 3 - 1j]))
        # the session survives the rejection
        assert session.push(np.zeros(64)).dtype == np.float32
    _source, body = split_app(_build("FIR"))
    with repro.compile(body, backend="plan", dtype="c64") as session:
        with pytest.raises(ChunkDtypeError):
            session.push(np.array(["a", "b"]))
        out = session.push(np.full(64, 1 + 1j))
        assert out.dtype == np.complex64


def test_feed_casts_to_the_policy():
    _source, body = split_app(_build("FIR"))
    with repro.compile(body, backend="compiled", dtype="f32") as session:
        session.feed(np.arange(128.0))  # float64 input: cast, not error
        assert session.run(8).dtype == np.float32


# ---------------------------------------------------------------------------
# Plan cache: dtype is part of the key
# ---------------------------------------------------------------------------


def test_plan_cache_is_dtype_keyed():
    clear_plan_cache()
    with repro.compile(_build("FIR"), backend="plan") as s64:
        s64.run(8)
    misses = plan_cache_stats()["misses"]
    with repro.compile(_build("FIR"), backend="plan", dtype="f32") as s32:
        s32.run(8)
    # same graph, different policy: must NOT hit the f64 entry
    assert plan_cache_stats()["misses"] > misses
    with repro.compile(_build("FIR"), backend="plan", dtype="f32") as again:
        again.run(8)
    assert plan_cache_stats()["hits"] >= 1
    clear_plan_cache()
