"""Dtype-tagged serving: PUSHT/FEEDT/ARRT frames and policy gating.

Float64 sessions keep the untagged PUSH/FEED/ARR wire format
byte-for-byte (back compatibility is load-bearing: old clients never
see a tag byte).  Any other numeric policy negotiates at OPEN and then
exchanges tagged frames — one dtype byte ahead of the samples — and
every mismatch (untagged chunk to a tagged session, wrong tag, RPUSH on
a non-f64 session, resumable + dtype) surfaces as a typed
``dtype-mismatch`` error frame, never a silent cast.
"""

import json

import numpy as np
import pytest

from repro.apps import BENCHMARKS, split_app
from repro.errors import ProtocolError
from repro.numeric import POLICIES
from repro.serve import ServeClient
from repro.serve import protocol as P
from repro.session import StreamSession
from test_serve import FIR_PARAMS, fir_inputs, serve_test


def direct_outputs(chunks, dtype):
    _source, body = split_app(BENCHMARKS["FIR"](**FIR_PARAMS))
    session = StreamSession(body, backend="plan", dtype=dtype)
    try:
        out = [session.push(c) for c in chunks]
    finally:
        session.close()
    return np.concatenate([o for o in out if len(o)])


# ---------------------------------------------------------------------------
# Tagged array codec
# ---------------------------------------------------------------------------


class TestTaggedCodec:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_roundtrip_preserves_dtype(self, name):
        policy = POLICIES[name]
        arr = policy.cast(np.linspace(-3.0, 7.0, 41))
        payload = P.encode_array_tagged(arr, policy)
        assert payload[0] == policy.wire_tag
        back = P.decode_array_tagged(payload, expected=policy)
        assert back.dtype == policy.dtype
        np.testing.assert_array_equal(back, arr)
        # without an expectation the tag alone selects the dtype
        assert P.decode_array_tagged(payload).dtype == policy.dtype

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError) as ei:
            P.decode_array_tagged(b"")
        assert ei.value.code == "bad-request"

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError) as ei:
            P.decode_array_tagged(bytes([250]) + b"\x00" * 8)
        assert ei.value.code == "bad-request"

    def test_ragged_body_rejected(self):
        payload = bytes([POLICIES["f32"].wire_tag]) + b"\x00" * 7
        with pytest.raises(ProtocolError) as ei:
            P.decode_array_tagged(payload)  # 7 is not a multiple of 4
        assert ei.value.code == "bad-request"

    def test_tag_disagreement_is_dtype_mismatch(self):
        payload = P.encode_array_tagged(np.zeros(4, np.float32),
                                        POLICIES["f32"])
        with pytest.raises(ProtocolError) as ei:
            P.decode_array_tagged(payload, expected=POLICIES["c64"])
        assert ei.value.code == "dtype-mismatch"


# ---------------------------------------------------------------------------
# Served round trips
# ---------------------------------------------------------------------------


def test_served_f32_push_matches_direct_session():
    inputs = fir_inputs(600)
    chunks = [inputs[:250], inputs[250:251], inputs[251:600]]
    expected = direct_outputs(chunks, "f32")

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS, dtype="f32")
            got = [await client.push(c) for c in chunks]
            await client.close_session()
            return np.concatenate(got)

    out = serve_test(scenario)
    assert out.dtype == np.float32
    # the wire carries f32 both ways and the session computes in f32:
    # served output is bitwise the local session's
    np.testing.assert_array_equal(out, expected)
    # and it tracks the float64 run at the policy tolerances
    ref = direct_outputs(chunks, None)
    np.testing.assert_allclose(out.astype(np.float64), ref,
                               rtol=POLICIES["f32"].rtol,
                               atol=POLICIES["f32"].atol)


def test_served_complex_push_roundtrip():
    rng = np.random.default_rng(3)
    chunk = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    expected = direct_outputs([chunk], "c64")

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS, dtype="c64")
            return await client.push(chunk)

    out = serve_test(scenario)
    assert out.dtype == np.complex64
    np.testing.assert_array_equal(out, expected)


def test_tagged_feed_then_run():
    inputs = fir_inputs(256)

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS,
                              dtype="float32")  # aliases resolve too
            count = await client.feed(inputs)
            assert count == len(inputs)
            return await client.run(64)

    out = serve_test(scenario)
    assert out.dtype == np.float32 and len(out) == 64


# ---------------------------------------------------------------------------
# Mismatch gating: typed error frames, sessions survive
# ---------------------------------------------------------------------------


def test_untagged_and_wrongly_tagged_chunks_are_dtype_mismatch():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS, dtype="f32")
            # a raw untagged PUSH (what a pre-dtype client would send)
            with pytest.raises(ProtocolError) as ei:
                await client._request(P.PUSH, P.encode_array(np.zeros(8)))
            assert ei.value.code == "dtype-mismatch"
            # a tagged frame carrying the wrong policy
            wrong = P.encode_array_tagged(np.zeros(8, np.complex64),
                                          POLICIES["c64"])
            with pytest.raises(ProtocolError) as ei:
                await client._request(P.PUSHT, wrong)
            assert ei.value.code == "dtype-mismatch"
            # error frames, not disconnects: the session still serves
            out = await client.push(np.zeros(64))
            assert out.dtype == np.float32

    serve_test(scenario)


def test_tagged_chunk_to_default_session_is_dtype_mismatch():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            await client.open(app="fir", params=FIR_PARAMS)  # f64
            wrong = P.encode_array_tagged(np.zeros(8, np.float32),
                                          POLICIES["f32"])
            with pytest.raises(ProtocolError) as ei:
                await client._request(P.PUSHT, wrong)
            assert ei.value.code == "dtype-mismatch"
            out = await client.push(np.zeros(64))
            assert out.dtype == np.float64

    serve_test(scenario)


def test_resumable_dtype_rejected_client_side():
    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            with pytest.raises(ProtocolError) as ei:
                await client.open(app="fir", params=FIR_PARAMS,
                                  resumable=True, dtype="f32")
            assert ei.value.code == "dtype-mismatch"
            # the guard fired before any frame went out; the connection
            # can still open a valid session
            await client.open(app="fir", params=FIR_PARAMS, dtype="f32")
            assert (await client.push(np.zeros(64))).dtype == np.float32

    serve_test(scenario)


def test_rpush_on_tagged_session_rejected_server_side():
    """A client that skips the local guard (or speaks the raw protocol)
    must still be stopped: RPUSH/RRUN payloads are untagged f64, so the
    server refuses them on any other policy."""

    async def scenario(server, path):
        async with await ServeClient.connect(path=path) as client:
            spec = {"app": "fir", "params": FIR_PARAMS,
                    "backend": "plan", "optimize": "none", "mode": "push",
                    "resumable": True, "dtype": "f32"}
            await client._request(P.OPEN,
                                  json.dumps(spec).encode("utf-8"))
            rid = (1).to_bytes(8, "big")
            with pytest.raises(ProtocolError) as ei:
                await client._request(P.RPUSH,
                                      rid + P.encode_array(np.zeros(8)))
            assert ei.value.code == "dtype-mismatch"

    serve_test(scenario)
