"""Tests for the stateful linear-node extension (thesis §7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import FeedbackLoop, Pipeline, RoundRobin
from repro.ir import FilterBuilder
from repro.linear import LinearNode
from repro.linear.state import (StatefulLinearFilter, StatefulLinearNode,
                                combine_stateful_pipeline,
                                from_difference_equation, from_stateless)
from repro.runtime import run_stream


def iir_reference(b, a, x):
    """Direct evaluation of y[n] = sum b_k x[n-k] + sum a_j y[n-j]."""
    y = np.zeros(len(x))
    for n in range(len(x)):
        acc = 0.0
        for k, bk in enumerate(b):
            if n - k >= 0:
                acc += bk * x[n - k]
        for j, aj in enumerate(a, start=1):
            if n - j >= 0:
                acc += aj * y[n - j]
        y[n] = acc
    return y


class TestDifferenceEquation:
    def test_pure_fir_case(self):
        node = from_difference_equation([1.0, 0.5, 0.25], [])
        x = np.arange(1.0, 9.0)
        got = node.simulate(x, firings=8)
        np.testing.assert_allclose(got, iir_reference([1, 0.5, 0.25], [], x))

    def test_first_order_iir(self):
        node = from_difference_equation([1.0], [0.5])
        x = np.ones(10)
        got = node.simulate(x, firings=10)
        np.testing.assert_allclose(got, iir_reference([1.0], [0.5], x))

    def test_biquad(self):
        b, a = [0.2, 0.3, 0.1], [0.4, -0.25]
        rng = np.random.default_rng(0)
        x = rng.normal(size=32)
        node = from_difference_equation(b, a)
        np.testing.assert_allclose(node.simulate(x, 32),
                                   iir_reference(b, a, x), atol=1e-12)

    def test_stability_check(self):
        assert from_difference_equation([1.0], [0.5]).is_stable()
        assert not from_difference_equation([1.0], [1.5]).is_stable()

    @settings(max_examples=40, deadline=None)
    @given(nb=st.integers(1, 4), na=st.integers(0, 3),
           seed=st.integers(0, 1000))
    def test_property_matches_reference(self, nb, na, seed):
        rng = np.random.default_rng(seed)
        b = rng.uniform(-1, 1, size=nb).tolist()
        a = rng.uniform(-0.4, 0.4, size=na).tolist()  # keep it stable-ish
        x = rng.normal(size=24)
        node = from_difference_equation(b, a)
        np.testing.assert_allclose(node.simulate(x, 24),
                                   iir_reference(b, a, x), atol=1e-9)


class TestStatefulComposition:
    def test_stateless_embedding(self):
        lin = LinearNode.from_coefficients([[1.0, 2.0]], [0.5], pop=1)
        node = from_stateless(lin)
        assert node.state_dim == 0
        x = np.arange(6.0)
        np.testing.assert_allclose(node.simulate(x, 5),
                                   lin.reference_run(x, 5))

    def test_cascade_of_iirs(self):
        """(IIR1 ; IIR2) combined == running them in sequence."""
        n1 = from_difference_equation([1.0, 0.2], [0.3])
        n2 = from_difference_equation([0.5], [0.1, 0.05])
        combined = combine_stateful_pipeline(n1, n2)
        rng = np.random.default_rng(1)
        x = rng.normal(size=40)
        mid = n1.simulate(x, 39)
        expected = n2.simulate(mid, 39)
        got = combined.simulate(x, 39)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_cascade_handles_rate_mismatch_via_expansion(self):
        """Rate-changing pairs now combine by expansion: an expander
        (1 -> 2) feeding an IIR composes into one (pop 1, push 2) node."""
        n1 = from_stateless(
            LinearNode.from_coefficients([[1.0], [2.0]], [0.5, 0.0], pop=1))
        n2 = from_difference_equation([1.0], [0.5])
        combined = combine_stateful_pipeline(n1, n2)
        assert (combined.peek, combined.pop, combined.push) == (1, 1, 2)
        rng = np.random.default_rng(7)
        x = rng.normal(size=32)
        mid = n1.simulate(x, 32)
        np.testing.assert_allclose(combined.simulate(x, 32),
                                   n2.simulate(mid, 64), atol=1e-10)

    def test_cascade_downstream_lookahead(self):
        """Λ2 peeking ahead (e2 > o2) combines via recomputation firings
        of Λ1, without over-advancing Λ1's state."""
        n1 = from_difference_equation([1.0, 0.3], [0.4])
        n2 = from_stateless(LinearNode.from_coefficients(
            [[1.0, -1.0, 0.5]], [0.0], pop=1))
        combined = combine_stateful_pipeline(n1, n2)
        assert (combined.peek, combined.pop, combined.push) == (3, 1, 1)
        rng = np.random.default_rng(8)
        x = rng.normal(size=48)
        mid = n1.simulate(x, 46)
        np.testing.assert_allclose(combined.simulate(x, 30),
                                   n2.simulate(mid, 30), atol=1e-10)

    def test_cascade_state_dim_concatenates(self):
        n1 = from_difference_equation([1.0, 0.1], [0.2])  # k=1
        n2 = from_difference_equation([1.0], [0.1, 0.2])  # k=2
        assert combine_stateful_pipeline(n1, n2).state_dim == 3


class TestStatefulFilterRuntime:
    def test_filter_equivalence_with_simulation(self):
        node = from_difference_equation([0.3, 0.4], [0.25])
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=64)
        got = run_stream(StatefulLinearFilter(node), inputs.tolist(), 60)
        np.testing.assert_allclose(got, node.simulate(inputs, 60),
                                   atol=1e-12)

    def test_replaces_feedbackloop_semantics(self):
        """A first-order recursive integrator built two ways: as a
        feedbackloop graph and as a stateful linear node."""
        g = FilterBuilder("LeakyAddDup", peek=2, pop=2, push=2)
        with g.work():
            t = g.local("t", g.pop_expr() + 0.5 * g.pop_expr())
            g.push(t)
            g.push(t)
        fwd = FilterBuilder("Fwd", peek=1, pop=1, push=1)
        with fwd.work():
            fwd.push(fwd.pop_expr())
        loop = FeedbackLoop(
            body=g.build(), loop=fwd.build(),
            joiner=RoundRobin((1, 1)), splitter=RoundRobin((1, 1)),
            enqueued=[0.0])
        node = from_difference_equation([1.0], [0.5])
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=50)
        via_graph = run_stream(loop, inputs.tolist(), 40)
        via_node = node.simulate(inputs, 40)
        np.testing.assert_allclose(via_graph, via_node, atol=1e-10)

    def test_stateful_node_in_pipeline_with_stateless(self):
        iir = from_difference_equation([1.0], [0.3])
        fir = LinearNode.from_coefficients([[1.0, -1.0]], [0.0], pop=1)
        from repro.linear import LinearFilter

        pipe = Pipeline([StatefulLinearFilter(iir), LinearFilter(fir)])
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=64)
        got = run_stream(pipe, inputs.tolist(), 50)
        mid = iir.simulate(inputs, 63)
        expected = fir.reference_run(mid, 50)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StatefulLinearNode(
                Ax=np.zeros((2, 1)), As=np.zeros((1, 2)),  # bad As
                bx=np.zeros(1), Cx=np.zeros((2, 1)), Cs=np.zeros((1, 1)),
                bs=np.zeros(1), s0=np.zeros(1), peek=2, pop=1, push=1)
