"""Frequency replacement tests (thesis §4.1, Transformations 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamGraphError
from repro.frequency import (CountedRadix2FFT, Decimator, NaiveFreqFilter,
                             OptimizedFreqFilter, fft_size_for, fftw_counts,
                             make_frequency_stream, next_power_of_two,
                             simple_fft_counts)
from repro.linear import LinearNode
from repro.profiling import Profiler
from repro.runtime import run_stream


def random_node(e, u, o=1, seed=0, with_b=True):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(e, u))
    b = rng.normal(size=u) if with_b else np.zeros(u)
    return LinearNode(A, b, e, o, u)


# ---------------------------------------------------------------------------
# FFT library
# ---------------------------------------------------------------------------


class TestFFTLib:
    def test_radix2_matches_numpy(self):
        rng = np.random.default_rng(0)
        for n in (2, 4, 8, 16, 64):
            x = rng.normal(size=n) + 1j * rng.normal(size=n)
            fft = CountedRadix2FFT(n)
            np.testing.assert_allclose(fft.transform(x), np.fft.fft(x),
                                       atol=1e-9)

    def test_radix2_inverse(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=32) + 1j * rng.normal(size=32)
        fft = CountedRadix2FFT(32)
        np.testing.assert_allclose(fft.transform(fft.transform(x),
                                                 inverse=True), x, atol=1e-9)

    def test_counts_match_closed_form(self):
        for n in (4, 16, 128):
            fft = CountedRadix2FFT(n)
            assert fft.counts_per_call.fmul == simple_fft_counts(n).fmul
            assert fft.counts_per_call.fadd == simple_fft_counts(n).fadd

    def test_fftw_model_cheaper_than_simple(self):
        for n in (16, 256, 4096):
            assert fftw_counts(n).mults < simple_fft_counts(n).mults
            assert fftw_counts(n).flops < simple_fft_counts(n).flops

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CountedRadix2FFT(12)

    def test_fft_size_for(self):
        assert fft_size_for(1) == 2
        assert fft_size_for(3) == 8
        # power-of-two peek doubles so that m >= e (see docstring)
        assert fft_size_for(256) == 1024
        for e in (3, 7, 31, 64, 100, 256):
            n = fft_size_for(e)
            assert n - 2 * e + 1 >= e
        assert next_power_of_two(17) == 32


# ---------------------------------------------------------------------------
# frequency filters: functional equivalence with the linear node
# ---------------------------------------------------------------------------


def freq_outputs(node, strategy, n_out, seed=5, fft_size=None):
    rng = np.random.default_rng(seed)
    n_inputs = node.peek + node.pop * (n_out // node.push + 64)
    inputs = rng.normal(size=n_inputs)
    stream = make_frequency_stream(node, strategy=strategy,
                                   fft_size=fft_size)
    got = run_stream(stream, inputs.tolist(), n_out)
    firings = n_out // node.push + 1
    expected = node.reference_run(inputs, firings=firings)[:n_out]
    return np.asarray(got), expected


class TestFrequencyEquivalence:
    @pytest.mark.parametrize("strategy", ["naive", "optimized"])
    def test_single_column_fir(self, strategy):
        node = random_node(e=8, u=1, seed=11)
        got, expected = freq_outputs(node, strategy, n_out=100)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @pytest.mark.parametrize("strategy", ["naive", "optimized"])
    def test_multi_column(self, strategy):
        node = random_node(e=5, u=3, seed=12)
        got, expected = freq_outputs(node, strategy, n_out=90)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @pytest.mark.parametrize("strategy", ["naive", "optimized"])
    def test_pop_greater_than_one_uses_decimator(self, strategy):
        node = random_node(e=6, u=2, o=3, seed=13)
        got, expected = freq_outputs(node, strategy, n_out=40)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_offsets_added(self):
        node = LinearNode(np.ones((4, 1)), np.array([2.5]), 4, 1, 1)
        got, expected = freq_outputs(node, "optimized", n_out=50)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_manual_fft_size(self):
        node = random_node(e=4, u=1, seed=14)
        got, expected = freq_outputs(node, "optimized", n_out=64,
                                     fft_size=32)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_fft_size_too_small_rejected(self):
        node = random_node(e=8, u=1, seed=15)
        with pytest.raises(StreamGraphError):
            NaiveFreqFilter(node, fft_size=8)

    def test_simple_backend_equivalent(self):
        node = random_node(e=8, u=1, seed=16)
        stream = make_frequency_stream(node, backend="simple")
        rng = np.random.default_rng(17)
        inputs = rng.normal(size=500)
        got = run_stream(stream, inputs.tolist(), 64)
        expected = node.reference_run(inputs, firings=64)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(e=st.integers(2, 12), u=st.integers(1, 3), o=st.integers(1, 3),
           seed=st.integers(0, 1000))
    def test_property_frequency_equals_time(self, e, u, o, seed):
        e = max(e, o)
        node = random_node(e=e, u=u, o=o, seed=seed)
        got, expected = freq_outputs(node, "optimized", n_out=5 * u)
        np.testing.assert_allclose(got, expected, atol=1e-7)


# ---------------------------------------------------------------------------
# rates and FLOP accounting
# ---------------------------------------------------------------------------


class TestFrequencyAccounting:
    def test_naive_rates(self):
        node = random_node(e=8, u=2)
        f = NaiveFreqFilter(node)
        n = fft_size_for(8)
        m = n - 16 + 1
        assert f.pop == m
        assert f.peek == m + 7
        assert f.push == 2 * m

    def test_optimized_rates(self):
        node = random_node(e=8, u=2)
        f = OptimizedFreqFilter(node)
        r = f.m + 7
        assert (f.peek, f.pop, f.push) == (r, r, 2 * r)
        assert f.init_push == 2 * f.m

    def test_optimized_beats_naive_per_output(self):
        """Per-output FLOPs: optimized < naive (same FFT size)."""
        node = random_node(e=64, u=1, seed=20, with_b=False)
        rng = np.random.default_rng(21)
        inputs = rng.normal(size=6000).tolist()
        per_output = {}
        for strategy in ("naive", "optimized"):
            prof = Profiler()
            stream = make_frequency_stream(node, strategy=strategy)
            run_stream(stream, inputs, 2000, profiler=prof)
            per_output[strategy] = prof.counts.flops / 2000
        assert per_output["optimized"] < per_output["naive"]

    def test_frequency_beats_direct_for_large_fir(self):
        """The headline effect: freq mults/output << e for large e."""
        from repro.linear import LinearFilter

        e = 128
        node = random_node(e=e, u=1, seed=22, with_b=False)
        rng = np.random.default_rng(23)
        inputs = rng.normal(size=8000).tolist()

        prof_direct = Profiler()
        run_stream(LinearFilter(node), inputs, 1000, profiler=prof_direct)
        prof_freq = Profiler()
        run_stream(make_frequency_stream(node), inputs, 1000,
                   profiler=prof_freq)
        assert prof_freq.counts.mults < prof_direct.counts.mults / 2

    def test_decimator_counts_nothing(self):
        prof = Profiler()
        out = run_stream(Decimator(3, 2), list(range(18)), 4, profiler=prof)
        assert out == [0.0, 1.0, 6.0, 7.0]
        assert prof.counts.flops == 0
