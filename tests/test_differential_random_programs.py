"""Differential testing on randomly generated work functions.

Generates random IR programs (straight-line code, loops, branches, local
arrays, tape operations) and checks all three execution backends —
``interp``, ``compiled``, and the vectorized ``plan`` — agree on outputs
*and* FLOP counts, that the *optimizing* plan pipeline
(``optimize="linear"/"freq"/"auto"``) preserves outputs on arbitrary
programs (linear ones get rewritten, nonlinear ones pass through), that
feedback-loop graphs execute as plan islands with exact value parity
under every optimize mode (linear, nonlinear, and pipeline-chain loop
bodies; randomized delays and enqueued values), and that whenever
extraction reports a linear node, the node's predictions match actual
execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import OPTIMIZE_MODES, plan_bailout_reason
from repro.graph.streams import FeedbackLoop, Filter, Pipeline, RoundRobin
from repro.ir import FilterBuilder
from repro.ir import nodes as N
from repro.linear import extract_filter
from repro.profiling import Profiler
from repro.runtime import Collector, ListSource, run_stream


class _Gen:
    """Deterministic random program generator over a numpy Generator."""

    def __init__(self, rng, peek, n_vars):
        self.rng = rng
        self.peek = peek
        self.vars = [f"v{i}" for i in range(n_vars)]

    def expr(self, depth=0) -> N.Expr:
        r = self.rng
        choice = r.integers(0, 6 if depth < 3 else 3)
        if choice == 0:
            return N.Const(float(r.integers(-3, 4)))
        if choice == 1:
            return N.Peek(N.Const(int(r.integers(0, self.peek))))
        if choice == 2:
            return N.Var(str(r.choice(self.vars)))
        if choice == 3:
            op = str(r.choice(["+", "-", "*"]))
            return N.Bin(op, self.expr(depth + 1), self.expr(depth + 1))
        if choice == 4:
            return N.Un("-", self.expr(depth + 1))
        return N.Bin("+", self.expr(depth + 1),
                     N.Const(float(r.integers(-2, 3))))

    def stmt(self, depth=0) -> N.Stmt:
        r = self.rng
        choice = r.integers(0, 4 if depth < 2 else 2)
        target = N.Var(str(r.choice(self.vars)))
        if choice <= 1:
            return N.Assign(target, self.expr())
        if choice == 2:
            n_iters = int(r.integers(1, 4))
            body = tuple(self.stmt(depth + 1)
                         for _ in range(r.integers(1, 3)))
            return N.For(f"i{depth}", N.Const(0), N.Const(n_iters), body)
        cond = N.Bin(">", self.expr(2), N.Const(0.0))
        then = (self.stmt(depth + 1),)
        orelse = (self.stmt(depth + 1),)
        return N.If(cond, then, orelse)

    def work(self, pushes: int) -> N.WorkFunction:
        body = [N.Decl(v, "float", None, N.Const(0.0)) for v in self.vars]
        body += [self.stmt() for _ in range(self.rng.integers(2, 6))]
        body += [N.PushS(self.expr()) for _ in range(pushes)]
        body += [N.PopS()]
        return N.WorkFunction(self.peek, 1, pushes, tuple(body))


def make_random_filter(seed: int) -> Filter:
    rng = np.random.default_rng(seed)
    peek = int(rng.integers(1, 5))
    pushes = int(rng.integers(1, 4))
    gen = _Gen(rng, peek, n_vars=int(rng.integers(1, 4)))
    return Filter(f"rand{seed}", gen.work(pushes))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), input_seed=st.integers(0, 1000))
def test_backends_agree_on_random_programs(seed, input_seed):
    """interp, compiled, and plan: bitwise-close outputs, identical FLOPs."""
    rng = np.random.default_rng(input_seed)
    inputs = rng.normal(size=make_random_filter(seed).peek + 30).tolist()
    outputs = {}
    profilers = {}
    for backend in ("interp", "compiled", "plan"):
        filt = make_random_filter(seed)
        prof = Profiler()
        outputs[backend] = run_stream(filt, inputs, 8 * filt.push,
                                      profiler=prof, backend=backend)
        profilers[backend] = prof
    for backend in ("compiled", "plan"):
        np.testing.assert_allclose(outputs[backend], outputs["interp"],
                                   atol=1e-9, err_msg=backend)
        assert profilers[backend].counts.flops == \
            profilers["interp"].counts.flops, backend
        assert profilers[backend].counts.mults == \
            profilers["interp"].counts.mults, backend


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), input_seed=st.integers(0, 1000))
def test_optimized_plan_matches_on_random_programs(seed, input_seed):
    """interp vs compiled vs every optimize mode of the plan pipeline.

    The rewrites change FLOP counts by design, so only output values are
    compared (to FFT rounding tolerance); nonlinear programs must pass
    through every mode untouched.
    """
    rng = np.random.default_rng(input_seed)
    inputs = rng.normal(size=make_random_filter(seed).peek + 30).tolist()
    n_out = 8 * make_random_filter(seed).push
    expected = run_stream(make_random_filter(seed), inputs, n_out,
                          backend="interp")
    compiled = run_stream(make_random_filter(seed), inputs, n_out,
                          backend="compiled")
    np.testing.assert_allclose(compiled, expected, atol=1e-9)
    for mode in OPTIMIZE_MODES:
        got = run_stream(make_random_filter(seed), inputs, n_out,
                         backend="plan", optimize=mode)
        np.testing.assert_allclose(got, expected, atol=1e-7,
                                   err_msg=f"optimize={mode}")


# ---------------------------------------------------------------------------
# Feedback loops: plan executes them as islands, value-identical
# ---------------------------------------------------------------------------


def make_random_feedback(seed: int) -> FeedbackLoop:
    """A schedulable feedback loop with randomized body, delay, and
    enqueued values.

    Rates are fixed (body peek/pop/push 2, loop 1:1, rr(1,1) on both
    ends) so the cycle always schedules.  Coefficients, the delay-ring
    length, and the body's *shape* vary: seeds rotate between a single
    linear 2x2 mix, a nonlinear body (quadratic term — the island must
    run it through the scalar fallback kernel), and a two-stage linear
    pipeline body (exercising the in-loop rate-preserving collapse of
    the optimize rewrites).
    """
    rng = np.random.default_rng(seed)
    a, b, c, d, g = (round(float(x), 3)
                     for x in rng.uniform(-0.9, 0.9, size=5))
    shape = seed % 3
    f = FilterBuilder(f"fbbody{seed}", peek=2, pop=2, push=2)
    with f.work():
        x = f.local("x", f.pop_expr())
        y = f.local("y", f.pop_expr())
        if shape == 1:  # nonlinear: island falls back to scalar firing
            f.push(a * x + b * x * y)
            f.push(c * x + d * y)
        else:
            f.push(a * x + b * y)
            f.push(c * x + d * y)
    body = f.build()
    if shape == 2:  # linear chain: collapsible inside the cycle
        s = FilterBuilder(f"fbscale{seed}", peek=2, pop=2, push=2)
        with s.work():
            u = s.local("u", s.pop_expr())
            v = s.local("v", s.pop_expr())
            s.push(u + v)
            s.push(v - u)
        body = Pipeline([body, s.build()], name=f"fbchain{seed}")
    lf = FilterBuilder(f"fbloop{seed}", peek=1, pop=1, push=1)
    with lf.work():
        lf.push(g * lf.pop_expr())
    delay = int(rng.integers(1, 6))
    return FeedbackLoop(body=body, loop=lf.build(),
                        joiner=RoundRobin((1, 1)),
                        splitter=RoundRobin((1, 1)),
                        enqueued=[round(float(v), 3) for v in
                                  rng.uniform(-1, 1, size=delay)])


@pytest.mark.parametrize("mode", OPTIMIZE_MODES)
@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42, 43])
def test_feedback_graphs_run_as_islands_under_every_optimize_mode(seed,
                                                                  mode):
    """Feedback graphs plan as islands (no whole-graph bailout) and
    every optimize mode preserves interp/compiled/plan value parity."""
    rng = np.random.default_rng(seed + 1)
    inputs = rng.normal(size=60).tolist()
    program = Pipeline([ListSource(inputs), make_random_feedback(seed),
                        Collector()], name="fb-harness")
    assert plan_bailout_reason(program) is None
    expected = run_stream(make_random_feedback(seed), inputs, 25,
                          backend="interp")
    compiled = run_stream(make_random_feedback(seed), inputs, 25,
                          backend="compiled")
    np.testing.assert_allclose(compiled, expected, atol=1e-9)
    got = run_stream(make_random_feedback(seed), inputs, 25,
                     backend="plan", optimize=mode)
    np.testing.assert_allclose(got, expected, atol=1e-8,
                               err_msg=f"optimize={mode}")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), input_seed=st.integers(0, 1000))
def test_feedback_value_parity_on_random_programs(seed, input_seed):
    """Property form: arbitrary coefficients/delays/body shapes keep the
    plan backend value-identical to the scalar backends."""
    rng = np.random.default_rng(input_seed)
    inputs = rng.normal(size=50).tolist()
    expected = run_stream(make_random_feedback(seed), inputs, 20,
                          backend="compiled")
    got = run_stream(make_random_feedback(seed), inputs, 20,
                     backend="plan")
    np.testing.assert_allclose(got, expected, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), input_seed=st.integers(0, 1000))
def test_extraction_sound_on_random_programs(seed, input_seed):
    """If extraction says linear, the node must predict execution."""
    filt = make_random_filter(seed)
    result = extract_filter(filt)
    if not result.is_linear:
        return
    rng = np.random.default_rng(input_seed)
    inputs = rng.normal(size=filt.peek + 20)
    n_out = 6 * filt.push
    executed = run_stream(filt, inputs.tolist(), n_out)
    predicted = result.node.reference_run(inputs, firings=6)
    np.testing.assert_allclose(executed, predicted[:n_out], atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_extraction_never_crashes(seed):
    """Extraction terminates with a verdict on arbitrary programs."""
    filt = make_random_filter(seed)
    result = extract_filter(filt)
    assert result.is_linear or isinstance(result.reason, str)
