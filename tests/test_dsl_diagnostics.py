"""Golden-file tests for DSL diagnostics.

These pin the *exact* rendered output — code, message, location, and
caret snippet — for representative frontend errors.  The rendered text
is part of the frontend's contract (serve clients and tooling display
it verbatim; ``.code`` is machine-dispatchable), so changes here must
be deliberate.
"""

import textwrap

import pytest

from repro.dsl import parse, tokenize
from repro.errors import Diagnostic, DSLError, SourceSpan


def _fails(source: str) -> DSLError:
    with pytest.raises(DSLError) as excinfo:
        parse(source)
    return excinfo.value


MISSING_SEMI = """\
float->float filter F {
    work pop 1 push 1 {
        float x = pop()
        push(x);
    }
}
"""

MISSING_SEMI_GOLDEN = """\
error[dsl-expected]: expected ';' after statement at line 3, col 24
  3 |         float x = pop()
     |                        ^"""


def test_missing_semicolon_golden():
    err = _fails(MISSING_SEMI)
    assert err.code == "dsl-expected"
    assert len(err.diagnostics) == 1
    assert err.render(MISSING_SEMI) == MISSING_SEMI_GOLDEN
    # the source is attached by the frontend, so render() alone works too
    assert err.render() == MISSING_SEMI_GOLDEN


THREE_ERRORS = """\
float->float filter F {
    work pop 1 push 1 {
        float x = pop()
        push(x;
    }
}
float->float pipeline P {
    add F(;
}
"""

THREE_ERRORS_GOLDEN = """\
error[dsl-expected]: expected ';' after statement at line 3, col 24
  3 |         float x = pop()
     |                        ^
error[dsl-expected]: expected ')' (found op ';') at line 4, col 15
  4 |         push(x;
     |               ^
error[dsl-expected-expr]: expected an expression (found op ';') at line 8, col 11
  8 |     add F(;
     |           ^"""


def test_recovery_reports_all_three_errors():
    """Regression: panic-mode recovery resynchronizes at ``;``/``}`` and
    keeps parsing — one parse reports all three errors, spanning two
    stream declarations, not just the first."""
    err = _fails(THREE_ERRORS)
    assert len(err.diagnostics) == 3
    assert [d.code for d in err.diagnostics] == \
        ["dsl-expected", "dsl-expected", "dsl-expected-expr"]
    assert [d.span.line for d in err.diagnostics] == [3, 4, 8]
    assert err.render(THREE_ERRORS) == THREE_ERRORS_GOLDEN


BAD_CHAR = ("float->float filter F "
            "{ work push 1 { push(0 @ 1); } }\n")

BAD_CHAR_GOLDEN = """\
error[dsl-bad-char]: unexpected character '@' at line 1, col 46
  1 | float->float filter F { work push 1 { push(0 @ 1); } }
     |                                              ^
error[dsl-expected]: expected ')' (found int '1') at line 1, col 48
  1 | float->float filter F { work push 1 { push(0 @ 1); } }
     |                                                ^"""


def test_lexer_error_golden():
    """A lexer error is a diagnostic like any other: the parser keeps
    going over the remaining token stream."""
    err = _fails(BAD_CHAR)
    assert err.code == "dsl-bad-char"
    assert err.render(BAD_CHAR) == BAD_CHAR_GOLDEN


NO_WORK_GOLDEN = """\
error[dsl-no-work]: filter 'F' has no work function at line 1, col 21
  1 | float->float filter F { init { } }
     |                     ^"""


def test_missing_work_golden():
    err = _fails("float->float filter F { init { } }\n")
    assert err.code == "dsl-no-work"
    assert err.render("float->float filter F { init { } }\n") \
        == NO_WORK_GOLDEN


BAD_KIND_GOLDEN = """\
error[dsl-expected-stream-kind]: expected filter/pipeline/splitjoin/feedbackloop (found ident 'gizmo') at line 1, col 14
  1 | float->float gizmo F { }
     |              ^^^^^"""


def test_bad_stream_kind_golden_multichar_caret():
    """The caret underline covers the whole offending token."""
    err = _fails("float->float gizmo F { }\n")
    assert err.code == "dsl-expected-stream-kind"
    assert err.render("float->float gizmo F { }\n") == BAD_KIND_GOLDEN


class TestLexerSpans:
    def test_token_spans_cover_text(self):
        toks = tokenize("float->float filter Foo")
        by_text = {t.text: t for t in toks if t.kind != "eof"}
        arrow = by_text["->"]
        assert (arrow.line, arrow.col, arrow.end_col) == (1, 6, 8)
        ident = by_text["Foo"]
        assert (ident.col, ident.end_col) == (21, 24)

    def test_spans_track_newlines(self):
        toks = tokenize("x\n  y\n/* multi\nline */ z")
        y = next(t for t in toks if t.text == "y")
        assert (y.line, y.col) == (2, 3)
        z = next(t for t in toks if t.text == "z")
        assert (z.line, z.col) == (4, 9)

    def test_number_span_width(self):
        tok = tokenize("  2.5e-2  ")[0]
        assert tok.kind == "float"
        assert (tok.col, tok.end_col) == (3, 9)


class TestDiagnosticAPI:
    def test_describe_one_liner(self):
        d = Diagnostic("dsl-expected", "expected ';'", SourceSpan(3, 24))
        assert d.describe() == \
            "expected ';' at line 3, col 24 [dsl-expected]"

    def test_render_without_source_omits_snippet(self):
        d = Diagnostic("dsl-expected", "expected ';'", SourceSpan(3, 24))
        assert d.render() == "error[dsl-expected]: expected ';' " \
                             "at line 3, col 24"

    def test_hint_rendered(self):
        d = Diagnostic("dsl-no-work", "filter 'F' has no work function",
                       hint="every filter needs a work block")
        assert d.render().endswith(
            "\n  hint: every filter needs a work block")

    def test_multi_error_str_lists_all(self):
        err = _fails(THREE_ERRORS)
        text = str(err)
        assert text.startswith("3 errors: ")
        assert text.count("[dsl-expected]") == 2
        assert "[dsl-expected-expr]" in text
