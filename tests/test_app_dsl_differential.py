"""DSL-elaborated apps vs the original Python builders, differentially.

The benchmark suite's single source of truth is now the ``.str`` DSL
under ``src/repro/apps/dsl/``; the hand-written ``FilterBuilder``
versions live on in ``tests/legacy_builders.py`` as the baseline.  The
contract for every app, at the suite's small test parameters:

* **interp** and **compiled** outputs are *bitwise* identical — the
  elaborator lowers the DSL to the same IR expression trees (including
  constant-folded parameter arithmetic), so scalar evaluation is
  float-for-float the same program;
* **plan** outputs agree to 1e-9 (batched kernels may reassociate) and
  the total FLOP count is *exactly* equal — the linear extractor sees
  matrices of the same shape and sparsity either way.

A final test checks the fingerprint path: compiling the same DSL source
text twice hits the plan cache without re-planning.
"""

import numpy as np
import pytest

import legacy_builders
from repro.apps import BENCHMARKS
from repro.exec import clear_plan_cache, plan_cache_stats
from repro.profiling import Profiler
from repro.runtime import run_graph
from repro.session import compile as compile_session

#: Small-but-structured parameters (mirrors test_apps.SMALL_PARAMS).
SMALL_PARAMS = {
    "FIR": dict(taps=32),
    "RateConvert": dict(taps=48),
    "TargetDetect": dict(n=24),
    "FMRadio": dict(bands=4, taps=16),
    "Radar": dict(channels=4, beams=2, fir1_taps=4, fir2_taps=2,
                  mf_taps=4, decimation=1),
    "FilterBank": dict(m=3, taps=12),
    "Vocoder": dict(window=16, decimation=8, n_filters=3, taps=12),
    "Oversampler": dict(stages=3, taps=16),
    "DToA": dict(stages=2, taps=12, out_taps=24),
    "Echo": dict(delay=24, gain=0.5, taps=16),
    "VocoderEcho": dict(window=16, decimation=8, n_filters=3, taps=12,
                        echo_delay=16),
    "IIR": {},
}

APPS = sorted(SMALL_PARAMS)


def _n_out(name: str) -> int:
    return 16 if name == "Radar" else 32


def _plan_outputs_and_flops(program, n):
    profiler = Profiler()
    session = compile_session(program, backend="plan", profiler=profiler)
    return session.run(n), profiler.counts.flops


@pytest.mark.parametrize("name", APPS)
def test_scalar_backends_bitwise(name):
    params = SMALL_PARAMS[name]
    n = _n_out(name)
    legacy = legacy_builders.LEGACY_BENCHMARKS[name](**params)
    for backend in ("interp", "compiled"):
        dsl = BENCHMARKS[name](**params)
        assert run_graph(dsl, n, backend=backend) == \
            run_graph(legacy, n, backend=backend), \
            f"{name}: {backend} outputs diverge from the legacy builder"


@pytest.mark.parametrize("name", APPS)
def test_plan_backend_close_and_flops_exact(name):
    params = SMALL_PARAMS[name]
    n = _n_out(name)
    dsl_out, dsl_flops = _plan_outputs_and_flops(
        BENCHMARKS[name](**params), n)
    legacy_out, legacy_flops = _plan_outputs_and_flops(
        legacy_builders.LEGACY_BENCHMARKS[name](**params), n)
    np.testing.assert_allclose(dsl_out, legacy_out, rtol=0, atol=1e-9)
    assert dsl_flops == legacy_flops, \
        f"{name}: plan FLOPs {dsl_flops} != legacy {legacy_flops}"


def test_structure_matches_legacy():
    """Same construct census either way — the elaborated graphs carry
    the same shape the builders produced, not just the same outputs."""
    from repro.graph import construct_counts

    for name, params in SMALL_PARAMS.items():
        dsl = construct_counts(BENCHMARKS[name](**params))
        legacy = construct_counts(
            legacy_builders.LEGACY_BENCHMARKS[name](**params))
        assert dsl == legacy, f"{name}: construct counts diverge"


def test_dsl_source_recompile_hits_plan_cache():
    """The same source text is the same plan: ``repro.compile(src)``
    twice plans once (the source fingerprint is the cache key)."""
    import repro
    from repro.apps._loader import dsl_source

    src = dsl_source("common", "fir")
    clear_plan_cache()
    try:
        first = repro.compile(src, top="FIRProgram", args=(16,)).run(32)
        assert plan_cache_stats()["hits"] == 0
        again = repro.compile(src, top="FIRProgram", args=(16,)).run(32)
        assert np.array_equal(again, first)
        assert plan_cache_stats()["hits"] >= 1
        # different args -> different fingerprint -> a fresh plan
        repro.compile(src, top="FIRProgram", args=(24,)).run(32)
        assert plan_cache_stats()["entries"] >= 2
    finally:
        clear_plan_cache()
